// Load-balance metrics (§III-B) and per-slot load series.
//
// The balancing index over n APs with throughputs T_i is Chiu–Jain's
//   β = (Σ T_i)² / (n · Σ T_i²)   ∈ [1/n, 1],
// and the paper's normalized form is β' = (β − 1/n) / (1 − 1/n) ∈ [0,1].
//
// ThroughputSeries turns an assigned trace into per-controller,
// per-slot, per-AP load matrices (Mbit/s), optionally modulating rates
// within sessions (deterministically, from each session's rate_seed) so
// that application dynamics exist at sub-session granularity — needed
// by the Fig. 3 analysis.
#pragma once

#include <span>
#include <vector>

#include "s3/trace/trace.h"
#include "s3/util/sim_time.h"
#include "s3/wlan/network.h"

namespace s3::analysis {

/// Chiu–Jain balancing index; 1.0 for an all-zero vector (an idle
/// domain is trivially balanced) and for n == 1.
double balance_index(std::span<const double> throughput) noexcept;

/// Normalized balancing index β' = (β - 1/n)/(1 - 1/n); 1.0 when n == 1.
double normalized_balance_index(std::span<const double> throughput) noexcept;

/// The §III-C variance statistic S_i = (β_i - β_{i-1}) / β_{i-1},
/// returned as |S_i| samples over consecutive pairs.
std::vector<double> balance_variation(std::span<const double> beta_series);

struct ThroughputOptions {
  std::int64_t slot_s = 600;  ///< load-averaging slot width
  /// Cap each AP's served throughput at its configured capacity.
  bool cap_at_capacity = true;
  /// Deterministic within-session rate modulation (application
  /// dynamics): per 5-minute block, lognormal factor with this sigma,
  /// normalized so each session's total traffic is preserved.
  bool modulate_within_session = false;
  double modulation_sigma = 0.35;
  std::int64_t modulation_block_s = 300;
};

/// Per-controller slot × AP load matrices over [begin, end).
class ThroughputSeries {
 public:
  /// `trace` must be fully assigned.
  ThroughputSeries(const wlan::Network& net, const trace::Trace& trace,
                   util::SimTime begin, util::SimTime end,
                   const ThroughputOptions& opts = {});

  std::size_t num_slots() const noexcept { return num_slots_; }
  std::size_t num_controllers() const noexcept { return data_.size(); }
  util::SimTime slot_begin(std::size_t slot) const noexcept {
    return begin_ + util::SimTime(static_cast<std::int64_t>(slot) * slot_s_);
  }

  /// Mbit/s per AP of controller c during `slot` (order matches
  /// net.aps_of_controller(c)).
  std::span<const double> slot_load(ControllerId c, std::size_t slot) const;

  /// Station presence (overlap-weighted user count) per AP in a slot.
  std::span<const double> slot_users(ControllerId c, std::size_t slot) const;

  /// Normalized balance index of controller c in every slot.
  std::vector<double> normalized_balance_series(ControllerId c) const;

  /// Normalized balance index of the *user-count* distribution.
  std::vector<double> normalized_user_balance_series(ControllerId c) const;

  /// Total load (Mbit/s) over all APs of controller c in a slot.
  double total_load(ControllerId c, std::size_t slot) const;

 private:
  util::SimTime begin_;
  std::int64_t slot_s_;
  std::size_t num_slots_ = 0;
  // data_[c][slot * domain_size + k]
  std::vector<std::vector<double>> data_;
  std::vector<std::vector<double>> users_;
  std::vector<std::size_t> domain_size_;
};

/// Deterministic within-session rate-modulation factor for the block
/// starting at `block_begin` (already normalized across the session's
/// blocks so the session total is preserved). Exposed for tests.
double session_block_rate_mbps(const trace::SessionRecord& s,
                               util::SimTime block_begin,
                               const ThroughputOptions& opts);

}  // namespace s3::analysis
