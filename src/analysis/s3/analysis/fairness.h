// Per-user service quality (§I's second complaint: imbalance causes
// "sub-optimal network throughput and unfair bandwidth allocation
// among users").
//
// When an AP's offered load exceeds its capacity, the shared medium
// throttles everyone on it proportionally. This module computes each
// session's *served* fraction of its demand under that model, and
// aggregates per-user throughput statistics and Jain's fairness index
// across users.
#pragma once

#include <optional>
#include <vector>

#include "s3/trace/trace.h"
#include "s3/util/sim_time.h"
#include "s3/wlan/contention.h"
#include "s3/wlan/network.h"

namespace s3::analysis {

struct FairnessOptions {
  /// Evaluation slot: within one slot, an AP's stations share capacity
  /// proportionally to their offered rates.
  std::int64_t slot_s = 600;
  /// When set, an AP's usable capacity in a slot shrinks with the
  /// number of stations on it (CSMA/CA contention) — crowding then
  /// hurts twice: less capacity shared among more demand.
  std::optional<wlan::ContentionModel> contention;
};

struct UserServiceStats {
  double offered_mb = 0.0;  ///< megabits the user wanted to move
  double served_mb = 0.0;   ///< megabits actually served

  double served_fraction() const noexcept {
    return offered_mb > 0.0 ? served_mb / offered_mb : 1.0;
  }
};

struct FairnessReport {
  std::vector<UserServiceStats> per_user;  ///< aligned with UserId
  /// Mean served fraction over users with any demand.
  double mean_served_fraction = 0.0;
  /// Jain's fairness index over active users' served fractions:
  /// (Σx)² / (n·Σx²) ∈ (0, 1]; 1 = everyone equally served.
  double jain_index = 0.0;
  /// Fraction of (user, slot) demand-slots that were throttled.
  double throttled_slot_fraction = 0.0;
};

/// Evaluates the service users received under an assigned trace over
/// [begin, end): per slot and AP, demand above capacity is scaled down
/// proportionally across the AP's stations.
FairnessReport evaluate_fairness(const wlan::Network& net,
                                 const trace::Trace& assigned,
                                 util::SimTime begin, util::SimTime end,
                                 const FairnessOptions& options = {});

/// Jain's index over a non-negative vector; 1.0 for empty/all-zero.
double jain_fairness(std::span<const double> xs) noexcept;

}  // namespace s3::analysis
