#include "s3/analysis/fairness.h"

#include <algorithm>
#include <unordered_map>

#include "s3/util/error.h"

namespace s3::analysis {

double jain_fairness(std::span<const double> xs) noexcept {
  double sum = 0.0, sum_sq = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
    ++n;
  }
  if (n == 0 || sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

FairnessReport evaluate_fairness(const wlan::Network& net,
                                 const trace::Trace& assigned,
                                 util::SimTime begin, util::SimTime end,
                                 const FairnessOptions& options) {
  S3_REQUIRE(assigned.fully_assigned(),
             "evaluate_fairness: trace must be assigned");
  S3_REQUIRE(options.slot_s > 0, "evaluate_fairness: bad slot width");
  S3_REQUIRE(begin < end, "evaluate_fairness: empty interval");

  FairnessReport report;
  report.per_user.assign(assigned.num_users(), {});

  // Sessions active per slot per AP. Iterate slots; for each, gather
  // overlapping sessions via a sweep over the (connect-ordered) trace.
  const auto sessions = assigned.sessions();

  struct SlotEntry {
    UserId user;
    double offered_mb;  // demand integrated over the overlap
  };

  std::size_t throttled = 0, demand_slots = 0;

  for (std::int64_t t = begin.seconds(); t < end.seconds();
       t += options.slot_s) {
    const std::int64_t slot_end = std::min(t + options.slot_s, end.seconds());
    std::unordered_map<ApId, std::vector<SlotEntry>> per_ap;
    for (const trace::SessionRecord& s : sessions) {
      if (s.connect.seconds() >= slot_end) break;  // connect-ordered
      const std::int64_t lo = std::max(t, s.connect.seconds());
      const std::int64_t hi = std::min(slot_end, s.disconnect.seconds());
      if (hi <= lo) continue;
      per_ap[s.ap].push_back(
          {s.user, s.demand_mbps * static_cast<double>(hi - lo)});
    }
    // s3lint: allow(det-unordered-iter): a user holds one session (one
    // AP) per slot, so the per-user float accumulations each see a
    // single contribution per slot; the slot-wide tallies are integers.
    for (const auto& [ap, entries] : per_ap) {
      double offered = 0.0;
      for (const SlotEntry& e : entries) offered += e.offered_mb;
      double usable_mbps = net.ap(ap).capacity_mbps;
      if (options.contention) {
        usable_mbps = options.contention->effective_capacity_mbps(
            usable_mbps, entries.size());
      }
      const double capacity_mb =
          usable_mbps * static_cast<double>(slot_end - t);
      const double scale =
          offered > capacity_mb && offered > 0.0 ? capacity_mb / offered : 1.0;
      for (const SlotEntry& e : entries) {
        report.per_user[e.user].offered_mb += e.offered_mb;
        report.per_user[e.user].served_mb += e.offered_mb * scale;
        ++demand_slots;
        if (scale < 1.0) ++throttled;
      }
    }
  }

  std::vector<double> fractions;
  double mean = 0.0;
  for (const UserServiceStats& u : report.per_user) {
    if (u.offered_mb <= 0.0) continue;
    fractions.push_back(u.served_fraction());
    mean += u.served_fraction();
  }
  if (!fractions.empty()) {
    report.mean_served_fraction = mean / static_cast<double>(fractions.size());
    report.jain_index = jain_fairness(fractions);
  } else {
    report.mean_served_fraction = 1.0;
    report.jain_index = 1.0;
  }
  report.throttled_slot_fraction =
      demand_slots > 0
          ? static_cast<double>(throttled) / static_cast<double>(demand_slots)
          : 0.0;
  return report;
}

}  // namespace s3::analysis
