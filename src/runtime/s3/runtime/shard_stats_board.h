// Per-domain replay-stats collection across a worker pool.
//
// Workers push each engine's final ReplayStats the moment the engine
// finishes, from whichever thread ran it; the driver asks for the
// entries back in controller order after the join, so the merged
// totals never depend on thread schedule. Appends take a mutex — this
// is once per domain per run, nowhere near any hot path.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "s3/sim/replay.h"
#include "s3/util/ids.h"
#include "s3/util/thread_annotations.h"

namespace s3::runtime {

class ShardStatsBoard {
 public:
  /// Records `domain`'s final stats; any thread, once per domain.
  void record(ControllerId domain, const sim::ReplayStats& stats)
      S3_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    entries_.push_back({domain, stats});
  }

  /// All recorded stats sorted by controller id — deterministic merge
  /// input regardless of completion order. Called after the join.
  std::vector<sim::ReplayStats> in_domain_order() const S3_EXCLUDES(mu_) {
    std::vector<std::pair<ControllerId, sim::ReplayStats>> entries;
    {
      util::MutexLock lock(mu_);
      entries = entries_;
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<sim::ReplayStats> out;
    out.reserve(entries.size());
    for (auto& [domain, stats] : entries) out.push_back(stats);
    return out;
  }

 private:
  mutable util::Mutex mu_;
  std::vector<std::pair<ControllerId, sim::ReplayStats>> entries_
      S3_GUARDED_BY(mu_);
};

}  // namespace s3::runtime
