// Sharded replay driver.
//
// The driver decomposes a replay into one ControllerEngine per
// controller domain and runs the engines on a thread pool. Because
// domains are independent (disjoint APs, disjoint arrivals, per-shard
// policy instances from a SelectorFactory), the merged result —
// assigned trace, statistics, instrumentation counters — is identical
// for every thread count, including 1. Wall clock scales with the
// number of cores until the largest single domain dominates.
//
// Two modes:
//   * run(factory)        — sharded, one policy instance per domain,
//                           threads from ReplayDriverConfig;
//   * run_sequential(...) — one shared policy instance observing every
//                           domain's events in global time order; this
//                           is the historic sim::replay() behavior
//                           bit-for-bit, kept for stateful policies
//                           that learn across domains and as the
//                           differential-testing reference.
#pragma once

#include "s3/runtime/controller_engine.h"

namespace s3::runtime {

struct ReplayDriverConfig {
  sim::ReplayConfig replay{};
  /// Worker threads for sharded replay; 0 = hardware_concurrency().
  /// The result is the same for every value; only wall clock changes.
  unsigned threads = 0;
  /// Optional fault schedule (s3::fault). The injector is immutable and
  /// its queries are pure functions of (plan, seed), so sharded engines
  /// share it without synchronization and the realized schedule — and
  /// therefore every assignment and statistic — is identical for every
  /// thread count. Sharded run() only; run_sequential() rejects it.
  /// Must outlive the driver.
  const fault::FaultInjector* injector = nullptr;
  /// Retry/backoff + degradation-hysteresis knobs, used when `injector`
  /// is set.
  fault::RecoveryPolicy recovery{};
};

/// Deterministically merges per-shard statistics (shard order must be
/// controller order). Guards the mean against num_batches == 0.
sim::ReplayStats merge_stats(std::span<const sim::ReplayStats> shards);

class ReplayDriver {
 public:
  /// `net` must outlive the driver.
  explicit ReplayDriver(const wlan::Network& net,
                        ReplayDriverConfig config = {});

  /// Sharded replay of `workload`: partitions sessions by controller
  /// domain, builds one policy per non-empty domain via `factory`, and
  /// runs the engines on the thread pool.
  sim::ReplayResult run(const trace::Trace& workload,
                        const sim::SelectorFactory& factory) const;

  /// Sequential replay with one shared policy instance: engines are
  /// interleaved on a global clock with the historic tie order
  /// (departures, then arrivals, then due batch flushes).
  sim::ReplayResult run_sequential(const trace::Trace& workload,
                                   sim::ApSelector& policy) const;

  /// Threads run() will actually use (resolves the 0 default).
  unsigned effective_threads() const noexcept;

  const ReplayDriverConfig& config() const noexcept { return config_; }

 private:
  std::vector<std::vector<std::size_t>> shard_sessions(
      const trace::Trace& workload) const;

  const wlan::Network* net_;
  ReplayDriverConfig config_;
};

}  // namespace s3::runtime
