#include "s3/runtime/replay_driver.h"

#include <atomic>
#include <exception>
#include <memory>
#include <thread>

#include "s3/check/contract.h"
#include "s3/check/validators.h"
#include "s3/runtime/error_collector.h"
#include "s3/runtime/shard_stats_board.h"
#include "s3/util/thread_annotations.h"

namespace s3::runtime {

namespace {

/// Boundary contract: a workload handed to the driver must be
/// structurally sound for this network. Runs only when checking is
/// enabled (off by default), so the hot path stays free.
void check_workload(const wlan::Network& net, const trace::Trace& workload) {
  if (!check::contracts_enabled()) return;
  check::validate_trace(workload, &net);
}

}  // namespace

sim::ReplayStats merge_stats(std::span<const sim::ReplayStats> shards) {
  sim::ReplayStats merged;
  for (const sim::ReplayStats& s : shards) {
    merged.num_sessions += s.num_sessions;
    merged.num_batches += s.num_batches;
    merged.max_batch_size = std::max(merged.max_batch_size, s.max_batch_size);
    merged.forced_overloads += s.forced_overloads;
    merged.candidate_violations += s.candidate_violations;
    merged.degraded_batches += s.degraded_batches;
    merged.transitions_to_degraded += s.transitions_to_degraded;
    merged.transitions_to_recovering += s.transitions_to_recovering;
    merged.transitions_to_healthy += s.transitions_to_healthy;
    merged.fault_evictions += s.fault_evictions;
    merged.reassociations += s.reassociations;
    merged.retry_attempts += s.retry_attempts;
    merged.admission_rejections += s.admission_rejections;
    merged.abandoned_sessions += s.abandoned_sessions;
    merged.recovery_migrations += s.recovery_migrations;
    merged.dropped_sessions += s.dropped_sessions;
  }
  merged.mean_batch_size =
      merged.num_batches > 0
          ? static_cast<double>(merged.num_sessions) /
                static_cast<double>(merged.num_batches)
          : 0.0;
  return merged;
}

ReplayDriver::ReplayDriver(const wlan::Network& net, ReplayDriverConfig config)
    : net_(&net), config_(config) {
  S3_REQUIRE(config_.replay.dispatch_window_s >= 0,
             "ReplayDriver: negative dispatch window");
}

unsigned ReplayDriver::effective_threads() const noexcept {
  if (config_.threads > 0) return config_.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::vector<std::vector<std::size_t>> ReplayDriver::shard_sessions(
    const trace::Trace& workload) const {
  std::vector<std::vector<std::size_t>> shards(net_->num_controllers());
  const auto sessions = workload.sessions();
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const ControllerId c = net_->controller_of_building(sessions[i].building);
    shards[c].push_back(i);
  }
  return shards;
}

sim::ReplayResult ReplayDriver::run(const trace::Trace& workload,
                                    const sim::SelectorFactory& factory) const {
  // Controller outages and losses need replicas (or explicit headless/
  // adoption handling) — that is repl::ReplicatedReplayDriver's job,
  // not this one's.
  S3_REQUIRE(config_.injector == nullptr ||
                 (config_.injector->plan().controller_outages.empty() &&
                  config_.injector->plan().controller_losses.empty()),
             "ReplayDriver: controller-outage/loss plans require the "
             "replicated driver (s3/repl/replicated_driver.h)");
  check_workload(*net_, workload);
  std::vector<std::vector<std::size_t>> shards = shard_sessions(workload);
  std::vector<ApId> assignment(workload.size(), kInvalidAp);

  // One policy + engine per non-empty domain, in controller order so
  // that policy construction (seed derivation, model wiring) never
  // depends on thread schedule.
  std::vector<std::unique_ptr<sim::ApSelector>> policies;
  std::vector<std::unique_ptr<ControllerEngine>> engines;
  for (ControllerId c = 0; c < shards.size(); ++c) {
    if (shards[c].empty()) continue;
    policies.push_back(factory.create(c));
    S3_ASSERT(policies.back() != nullptr,
              "ReplayDriver: factory returned a null policy");
    engines.push_back(std::make_unique<ControllerEngine>(
        *net_, workload, c, std::move(shards[c]), *policies.back(),
        config_.replay, assignment, config_.injector, config_.recovery));
  }

  // Each worker posts its engine's stats to the board the moment that
  // engine finishes; the board hands them back in controller order, so
  // the merge below is identical for every thread count.
  ShardStatsBoard board;
  const unsigned workers = std::min<unsigned>(
      effective_threads(), static_cast<unsigned>(engines.size()));
  if (workers <= 1) {
    for (auto& e : engines) {
      e->run();
      board.record(e->domain(), e->stats());
    }
  } else {
    std::atomic<std::size_t> next{0};
    ErrorCollector errors;
    auto work = [&]() {
      for (std::size_t i = next.fetch_add(1); i < engines.size();
           i = next.fetch_add(1)) {
        try {
          engines[i]->run();
          board.record(engines[i]->domain(), engines[i]->stats());
        } catch (...) {
          errors.capture(std::current_exception());
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(work);
    for (std::thread& t : pool) t.join();
    if (std::exception_ptr first = errors.take()) {
      std::rethrow_exception(first);
    }
  }

  return sim::ReplayResult{workload.with_assignments(assignment),
                           merge_stats(board.in_domain_order())};
}

sim::ReplayResult ReplayDriver::run_sequential(const trace::Trace& workload,
                                               sim::ApSelector& policy) const {
  // Sequential mode exists to reproduce the historic monolith
  // bit-for-bit; the fault path deliberately stays out of it.
  S3_REQUIRE(config_.injector == nullptr,
             "run_sequential: fault injection requires sharded run()");
  check_workload(*net_, workload);
  std::vector<std::vector<std::size_t>> shards = shard_sessions(workload);
  std::vector<ApId> assignment(workload.size(), kInvalidAp);

  std::vector<std::unique_ptr<ControllerEngine>> engines;
  for (ControllerId c = 0; c < shards.size(); ++c) {
    if (shards[c].empty()) continue;
    engines.push_back(std::make_unique<ControllerEngine>(
        *net_, workload, c, std::move(shards[c]), policy, config_.replay,
        assignment));
  }

  constexpr util::SimTime kNever = ControllerEngine::kNever;
  while (true) {
    // Global minima over the engines. Arrivals and departures order by
    // (time, global session index) — exactly the single heap / single
    // cursor of the historic monolith; flushes take the first engine
    // (ascending controller id) at the minimum deadline.
    ControllerEngine* arrival_engine = nullptr;
    util::SimTime ta = kNever;
    std::size_t arrival_session = 0;
    ControllerEngine* departure_engine = nullptr;
    util::SimTime td = kNever;
    std::size_t departure_session = 0;
    ControllerEngine* flush_engine = nullptr;
    util::SimTime tf = kNever;

    for (const auto& e : engines) {
      const util::SimTime ea = e->next_arrival_time();
      if (ea != kNever) {
        const std::size_t s = e->next_arrival_session();
        if (!arrival_engine || ea < ta || (ea == ta && s < arrival_session)) {
          arrival_engine = e.get();
          ta = ea;
          arrival_session = s;
        }
      }
      const util::SimTime ed = e->next_departure_time();
      if (ed != kNever) {
        const std::size_t s = e->next_departure_session();
        if (!departure_engine || ed < td ||
            (ed == td && s < departure_session)) {
          departure_engine = e.get();
          td = ed;
          departure_session = s;
        }
      }
      const util::SimTime ef = e->flush_deadline();
      if (ef != kNever && ef < tf) {
        flush_engine = e.get();
        tf = ef;
      }
    }

    if (!arrival_engine && !departure_engine && !flush_engine) break;

    // Tie order at equal timestamps: departures free capacity first,
    // then new arrivals join their batch, then due batches flush.
    if (departure_engine && td <= ta && td <= tf) {
      departure_engine->process_departure();
      continue;
    }
    if (arrival_engine && ta <= tf) {
      arrival_engine->process_arrival();
      continue;
    }
    flush_engine->flush();
  }

  std::vector<sim::ReplayStats> shard_stats;
  shard_stats.reserve(engines.size());
  for (auto& e : engines) {
    e->finalize();
    shard_stats.push_back(e->stats());
  }
  return sim::ReplayResult{workload.with_assignments(assignment),
                           merge_stats(shard_stats)};
}

}  // namespace s3::runtime
