// Per-controller replay engine.
//
// One ControllerEngine owns everything a single controller domain
// needs to replay its slice of the workload: the domain's arrival
// stream (global session indices into the shared trace), a departure
// queue, the pending association batch, a policy instance, and an
// association-load tracker. Controllers are fully independent domains
// (§V-A): candidate sets never cross buildings under the default radio
// model, so engines share no mutable state and can run on different
// threads without synchronization. Each engine writes its placements
// into a disjoint set of slots of the shared assignment vector.
//
// The engine exposes two execution styles:
//   * run() — walk the domain's whole event stream (sharded mode, one
//     engine per thread-pool task);
//   * peek/process stepping — the ReplayDriver's sequential mode
//     interleaves engines on a global clock, reproducing the historic
//     single-threaded sim::replay() bit-for-bit, shared policy
//     instance and all.
#pragma once

#include <limits>
#include <queue>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "s3/fault/degradation.h"
#include "s3/fault/fault_injector.h"
#include "s3/fault/replica_snapshot.h"
#include "s3/fault/retry_queue.h"
#include "s3/sim/replay.h"
#include "s3/sim/selector.h"
#include "s3/trace/trace.h"
#include "s3/wlan/network.h"

namespace s3::runtime {

class ControllerEngine {
 public:
  /// Sentinel "no more events of this kind" timestamp.
  static constexpr util::SimTime kNever =
      util::SimTime(std::numeric_limits<std::int64_t>::max());

  /// `sessions` are global indices into `workload.sessions()`, in trace
  /// (connect-time) order, all belonging to controller `domain`. The
  /// engine keeps references to `net`, `workload`, `policy` and (when
  /// given) `injector`, and writes into `assignment` (one slot per
  /// workload session); all must outlive it.
  ///
  /// With a non-null `injector` the engine additionally realizes the
  /// fault schedule for its domain: AP outages evict stations into a
  /// capped-exponential-backoff retry queue, AP recoveries trigger a
  /// bounded rebalance sweep, model outages drive the HEALTHY →
  /// DEGRADED → RECOVERING state machine (fallback batches are served
  /// by the policy's embedded LLF), and admission faults reject
  /// individual placements. Everything is derived from (plan, seed,
  /// domain), so results stay thread-count invariant.
  ControllerEngine(const wlan::Network& net, const trace::Trace& workload,
                   ControllerId domain, std::vector<std::size_t> sessions,
                   sim::ApSelector& policy, const sim::ReplayConfig& config,
                   std::span<ApId> assignment,
                   const fault::FaultInjector* injector = nullptr,
                   const fault::RecoveryPolicy& recovery = {});

  /// Rebind copy — the replication layer's checkpoint/install
  /// primitive. Member-wise copy of `other`'s entire mutable state
  /// (tracker float sums, queue contents, unordered-container history
  /// and all) with the policy and assignment references rewired to the
  /// caller's own instances: `policy` must be a clone() of `other`'s
  /// policy and `assignment` a caller-owned copy of `other`'s slots
  /// (same size; the caller copies the backing vector). The copy's
  /// future steps are bit-identical to the original's.
  ControllerEngine(const ControllerEngine& other, sim::ApSelector& policy,
                   std::span<ApId> assignment);

  ControllerId domain() const noexcept { return domain_; }

  /// Processes every event of this domain, then finalizes stats.
  void run();

  // --- Fine-grained stepping (sequential global-interleave mode) ----
  // Tie order at equal timestamps matches the historic monolith:
  // departures free capacity first, then arrivals join their batch,
  // then due batches flush.

  bool done() const noexcept;

  util::SimTime next_arrival_time() const noexcept;
  /// Global session index of the next arrival (only valid when
  /// next_arrival_time() != kNever).
  std::size_t next_arrival_session() const noexcept;

  util::SimTime next_departure_time() const noexcept;
  std::size_t next_departure_session() const noexcept;

  /// Deadline of the pending batch; kNever when nothing is pending.
  util::SimTime flush_deadline() const noexcept;

  void process_arrival();
  void process_departure();
  void flush();

  /// Re-entrant dispatch-and-commit building block: routes a prepared
  /// arrival batch through the policy and commits the placements
  /// (tracker, assignment slots, policy on_associate, departure and
  /// retry bookkeeping), returning the chosen AP per arrival. Unlike
  /// flush() it does not read or reset the staged batch_ state, so an
  /// external driver (the serve pipeline, the replication layer) can
  /// inject batches at any point of the event walk without corrupting
  /// a pending trace-driven batch. flush() delegates here; calling it
  /// with the same arrivals is byte-identical to the historic inline
  /// path. Arrival session indices must be valid workload sessions.
  std::vector<ApId> place_batch(std::span<const sim::Arrival> arrivals,
                                util::SimTime now,
                                const sim::FaultControls& faults = {});

  // --- Uniform stepping (replication layer, s3::repl) ---------------

  /// One event-loop step kind, in the engine's priority order.
  enum class StepKind : std::uint8_t {
    kNone = 0,  ///< done() — nothing left to process
    kFault,
    kDeparture,
    kArrival,
    kRetries,
    kFlush,
  };
  struct Step {
    StepKind kind = StepKind::kNone;
    util::SimTime when = kNever;
  };

  /// The next event this engine would process — exactly the branch
  /// run() takes (fault flips, departures, arrivals, due retries,
  /// flush; the legacy three-way order without an injector). kNone iff
  /// done(). Pure; calling it repeatedly without applying is free.
  Step next_step() const noexcept;

  /// Applies one step of the given kind and returns a cheap O(1) fold
  /// of the post-step engine state (queue sizes + counters). Replicas
  /// that applied the same event-log prefix observe the same digest,
  /// so the log stores it per record and backups verify on replay.
  std::uint64_t apply_step(StepKind kind);

  /// Full bit-exact state capture (fault/replica_snapshot.h). The
  /// `term`/`applied_records` fields are owned by the replication
  /// layer and left zero here.
  fault::ReplicaSnapshot snapshot() const;

  // --- Headless mode (controller down, no backup to promote) --------

  /// Discards the next arrival — nobody is listening; counted in
  /// stats().dropped_sessions.
  void drop_next_arrival();
  /// Discards the pending batch (controller crashed before the flush);
  /// every member counts as dropped.
  void drop_pending_batch();
  /// Parks all pending retries until `t` (the controller restart).
  void postpone_retries_until(util::SimTime t);

  /// Current degradation state (kHealthy when no injector is attached).
  fault::HealthState health_state() const noexcept {
    return degradation_.state();
  }

  /// Computes derived statistics (mean batch size); call once after
  /// the event walk. run() does this itself.
  void finalize();

  const sim::ReplayStats& stats() const noexcept { return stats_; }

 private:
  struct Departure {
    util::SimTime when;
    std::size_t session_index;
    ApId ap;
    UserId user;
  };
  struct DepartureLater {
    bool operator()(const Departure& a, const Departure& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.session_index > b.session_index;
    }
  };

  // --- fault path (active only when injector_ != nullptr) -----------

  struct ActiveInfo {
    UserId user = kInvalidUser;
    ApId ap = kInvalidAp;
    double demand_mbps = 0.0;
  };

  util::SimTime next_fault_time() const noexcept;
  util::SimTime next_retry_time() const noexcept;
  std::uint64_t step_digest() const noexcept;
  void process_fault();
  void process_retries();
  /// Kicks every station off `ap` into the retry queue.
  void evict_ap(ApId ap, util::SimTime when);
  /// Bounded migration sweep toward the just-recovered `ap`.
  void recover_ap(ApId ap, util::SimTime when);
  /// Books a failed association attempt: backoff-requeue, or abandon
  /// once the attempt cap is reached.
  void defer_session(std::size_t session_index, util::SimTime now);
  void abandon_session(std::size_t session_index);
  sim::Arrival make_arrival(std::size_t session_index,
                            util::SimTime connect) const;

  const wlan::Network* net_;
  const trace::Trace* workload_;
  ControllerId domain_;
  std::vector<std::size_t> sessions_;  // global indices, connect order
  sim::ApSelector* policy_;
  sim::ReplayConfig config_;
  std::span<ApId> assignment_;

  sim::ApLoadTracker tracker_;
  std::priority_queue<Departure, std::vector<Departure>, DepartureLater>
      departures_;
  std::vector<sim::Arrival> batch_;
  util::SimTime batch_deadline_ = kNever;
  std::size_t next_arrival_ = 0;

  const fault::FaultInjector* injector_ = nullptr;
  fault::RecoveryPolicy recovery_;
  fault::DegradationTracker degradation_;
  std::vector<fault::ApFaultEvent> fault_events_;  // domain-local, sorted
  std::size_t next_fault_ = 0;
  fault::RetryQueue retries_;
  std::unordered_map<std::size_t, ActiveInfo> active_;
  std::unordered_map<std::size_t, std::uint32_t> attempts_;
  std::unordered_set<std::size_t> requeued_;          // awaiting re-placement
  std::unordered_set<std::size_t> departure_queued_;  // departure pushed once

  sim::ReplayStats stats_;
};

}  // namespace s3::runtime
