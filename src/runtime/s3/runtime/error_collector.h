// First-error capture for a driver worker pool.
//
// Both replay drivers (runtime::ReplayDriver and
// repl::ReplicatedReplayDriver) run one engine/group per worker and
// must surface the first exception a worker threw after the join —
// one definition here instead of a copy in each driver. The annotated
// mutex makes the cross-thread handoff a compiler-checked contract.
#pragma once

#include <exception>
#include <utility>

#include "s3/util/thread_annotations.h"

namespace s3::runtime {

class ErrorCollector {
 public:
  /// Stores `error` if no earlier capture happened; any thread.
  void capture(std::exception_ptr error) S3_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    if (!first_) first_ = std::move(error);
  }

  /// The first captured error, or null. Called after the pool joined.
  std::exception_ptr take() S3_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return first_;
  }

 private:
  util::Mutex mu_;
  std::exception_ptr first_ S3_GUARDED_BY(mu_);
};

}  // namespace s3::runtime
