// Definition of the historic sim::replay() entry point on top of the
// sharded runtime: a ReplayDriver in sequential mode, which preserves
// the single-threaded global event order (and therefore every byte of
// the assigned trace) that callers of the old monolith saw.
#include "s3/runtime/replay_driver.h"
#include "s3/sim/replay.h"

namespace s3::sim {

ReplayResult replay(const wlan::Network& net, const trace::Trace& workload,
                    ApSelector& policy, const ReplayConfig& config) {
  runtime::ReplayDriverConfig driver_config;
  driver_config.replay = config;
  return runtime::ReplayDriver(net, driver_config)
      .run_sequential(workload, policy);
}

}  // namespace s3::sim
