#include "s3/runtime/controller_engine.h"

#include <algorithm>

#include "s3/check/contract.h"
#include "s3/check/validators.h"
#include "s3/util/metrics.h"
#include "s3/wlan/radio.h"

namespace s3::runtime {

namespace {

struct SimMetrics {
  util::Counter* batches;
  util::Counter* sessions;
  util::Counter* forced_overloads;
  util::Counter* candidate_violations;
  util::Histogram* batch_size;
  util::Timer* dispatch;
};

/// Instrument handles are resolved once; the registry guarantees
/// pointer stability.
const SimMetrics& sim_metrics() {
  static const SimMetrics m{
      util::metrics().counter("sim.batches"),
      util::metrics().counter("sim.sessions"),
      util::metrics().counter("sim.forced_overloads"),
      util::metrics().counter("sim.candidate_violations"),
      util::metrics().histogram("sim.batch_size"),
      util::metrics().timer("sim.dispatch_ns"),
  };
  return m;
}

}  // namespace

ControllerEngine::ControllerEngine(const wlan::Network& net,
                                   const trace::Trace& workload,
                                   ControllerId domain,
                                   std::vector<std::size_t> sessions,
                                   sim::ApSelector& policy,
                                   const sim::ReplayConfig& config,
                                   std::span<ApId> assignment)
    : net_(&net),
      workload_(&workload),
      domain_(domain),
      sessions_(std::move(sessions)),
      policy_(&policy),
      config_(config),
      assignment_(assignment),
      tracker_(net) {
  S3_REQUIRE(config_.dispatch_window_s >= 0,
             "replay: negative dispatch window");
  S3_REQUIRE(assignment_.size() == workload.size(),
             "ControllerEngine: assignment size mismatch");
  stats_.num_sessions = sessions_.size();
  sim_metrics().sessions->add(sessions_.size());
}

bool ControllerEngine::done() const noexcept {
  return next_arrival_ >= sessions_.size() && departures_.empty() &&
         batch_.empty();
}

util::SimTime ControllerEngine::next_arrival_time() const noexcept {
  return next_arrival_ < sessions_.size()
             ? workload_->sessions()[sessions_[next_arrival_]].connect
             : kNever;
}

std::size_t ControllerEngine::next_arrival_session() const noexcept {
  return sessions_[next_arrival_];
}

util::SimTime ControllerEngine::next_departure_time() const noexcept {
  return departures_.empty() ? kNever : departures_.top().when;
}

std::size_t ControllerEngine::next_departure_session() const noexcept {
  return departures_.top().session_index;
}

util::SimTime ControllerEngine::flush_deadline() const noexcept {
  return batch_.empty() ? kNever : batch_deadline_;
}

void ControllerEngine::process_arrival() {
  const std::size_t index = sessions_[next_arrival_];
  const trace::SessionRecord& s = workload_->sessions()[index];
  sim::Arrival a;
  a.session_index = index;
  a.user = s.user;
  a.controller = net_->controller_of_building(s.building);
  a.connect = s.connect;
  a.demand_mbps = s.demand_mbps;
  a.candidates = wlan::candidate_aps(*net_, config_.radio, s.building, s.pos);
  ++next_arrival_;

  if (batch_.empty()) {
    batch_deadline_ = a.connect + util::SimTime(config_.dispatch_window_s);
  }
  batch_.push_back(std::move(a));
  if (config_.dispatch_window_s == 0) flush();
}

void ControllerEngine::process_departure() {
  const Departure d = departures_.top();
  departures_.pop();
  tracker_.disconnect(d.session_index, d.ap);
  policy_->on_disconnect(d.session_index, d.user, d.ap, d.when);
}

void ControllerEngine::flush() {
  if (batch_.empty()) return;
  const SimMetrics& m = sim_metrics();

  std::vector<ApId> chosen;
  {
    util::ScopedTimer timing(m.dispatch);
    chosen = policy_->select_batch(batch_, tracker_);
  }
  S3_ASSERT(chosen.size() == batch_.size(),
            "replay: policy returned wrong batch arity");
  const auto sessions = workload_->sessions();
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    const sim::Arrival& a = batch_[i];
    const ApId ap = chosen[i];
    if (std::find(a.candidates.begin(), a.candidates.end(), ap) ==
        a.candidates.end()) {
      // Broken policy contract: keep the placement (the association
      // already happened from the stations' point of view) but make
      // the breach observable instead of trusting silently.
      ++stats_.candidate_violations;
      m.candidate_violations->add();
      S3_POSTCONDITION(false,
                       "replay: policy picked an AP outside the candidate set");
      S3_DEBUG_ASSERT(false,
                      "replay: policy picked an AP outside the candidate set");
    }
    if (tracker_.headroom_mbps(ap) < a.demand_mbps) {
      ++stats_.forced_overloads;
      m.forced_overloads->add();
      // Per-AP breakdown, created lazily — overload is the cold path,
      // so the registry lookup cost does not matter here.
      util::metrics()
          .counter("sim.forced_overloads.ap" + std::to_string(ap))
          ->add();
    }
    tracker_.associate(a.session_index, ap, a.user, a.demand_mbps);
    assignment_[a.session_index] = ap;
    policy_->on_associate(a, ap);
    departures_.push(Departure{sessions[a.session_index].disconnect,
                               a.session_index, ap, a.user});
  }
  ++stats_.num_batches;
  stats_.max_batch_size = std::max(stats_.max_batch_size, batch_.size());
  m.batches->add();
  m.batch_size->record(batch_.size());
  batch_.clear();
  batch_deadline_ = kNever;
  // Post-flush structural invariant: per-AP load conservation and
  // β ∈ [1/n, 1]. Evaluated only when contract checking is on.
  if (check::contracts_enabled()) {
    check::validate_load_state(tracker_);
  }
}

void ControllerEngine::run() {
  while (!done()) {
    const util::SimTime ta = next_arrival_time();
    const util::SimTime td = next_departure_time();
    const util::SimTime tf = flush_deadline();
    if (td <= ta && td <= tf) {
      process_departure();
    } else if (ta <= tf) {
      process_arrival();
    } else {
      flush();
    }
  }
  finalize();
}

void ControllerEngine::finalize() {
  stats_.mean_batch_size =
      stats_.num_batches > 0
          ? static_cast<double>(stats_.num_sessions) /
                static_cast<double>(stats_.num_batches)
          : 0.0;
}

}  // namespace s3::runtime
