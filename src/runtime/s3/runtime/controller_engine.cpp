#include "s3/runtime/controller_engine.h"

#include <algorithm>
#include <cmath>

#include "s3/check/contract.h"
#include "s3/check/validators.h"
#include "s3/util/metrics.h"
#include "s3/wlan/radio.h"

namespace s3::runtime {

namespace {

struct SimMetrics {
  util::Counter* batches;
  util::Counter* sessions;
  util::Counter* forced_overloads;
  util::Counter* candidate_violations;
  util::Histogram* batch_size;
  util::Timer* dispatch;
};

/// Instrument handles are resolved once; the registry guarantees
/// pointer stability.
const SimMetrics& sim_metrics() {
  static const SimMetrics m{
      util::metrics().counter("sim.batches"),
      util::metrics().counter("sim.sessions"),
      util::metrics().counter("sim.forced_overloads"),
      util::metrics().counter("sim.candidate_violations"),
      util::metrics().histogram("sim.batch_size"),
      util::metrics().timer("sim.dispatch_ns"),
  };
  return m;
}

struct FaultMetrics {
  util::Counter* evictions;
  util::Counter* reassociations;
  util::Counter* retry_attempts;
  util::Counter* admission_rejections;
  util::Counter* abandoned;
  util::Counter* degraded_batches;
  util::Counter* to_degraded;
  util::Counter* to_recovering;
  util::Counter* to_healthy;
  util::Counter* recovery_migrations;
};

const FaultMetrics& fault_metrics() {
  static const FaultMetrics m{
      util::metrics().counter("fault.evictions"),
      util::metrics().counter("fault.reassociations"),
      util::metrics().counter("fault.retry_attempts"),
      util::metrics().counter("fault.admission_rejections"),
      util::metrics().counter("fault.abandoned_sessions"),
      util::metrics().counter("fault.degraded_batches"),
      util::metrics().counter("fault.transitions_to_degraded"),
      util::metrics().counter("fault.transitions_to_recovering"),
      util::metrics().counter("fault.transitions_to_healthy"),
      util::metrics().counter("fault.recovery_migrations"),
  };
  return m;
}

}  // namespace

ControllerEngine::ControllerEngine(const wlan::Network& net,
                                   const trace::Trace& workload,
                                   ControllerId domain,
                                   std::vector<std::size_t> sessions,
                                   sim::ApSelector& policy,
                                   const sim::ReplayConfig& config,
                                   std::span<ApId> assignment,
                                   const fault::FaultInjector* injector,
                                   const fault::RecoveryPolicy& recovery)
    : net_(&net),
      workload_(&workload),
      domain_(domain),
      sessions_(std::move(sessions)),
      policy_(&policy),
      config_(config),
      assignment_(assignment),
      tracker_(net),
      injector_(injector),
      recovery_(recovery),
      degradation_(recovery.healthy_after_clean_batches) {
  S3_REQUIRE(config_.dispatch_window_s >= 0,
             "replay: negative dispatch window");
  S3_REQUIRE(assignment_.size() == workload.size(),
             "ControllerEngine: assignment size mismatch");
  stats_.num_sessions = sessions_.size();
  sim_metrics().sessions->add(sessions_.size());
  if (injector_ != nullptr) {
    fault_events_ = injector_->events_for_domain(net, domain_);
  }
}

ControllerEngine::ControllerEngine(const ControllerEngine& other,
                                   sim::ApSelector& policy,
                                   std::span<ApId> assignment)
    : ControllerEngine(other) {
  S3_REQUIRE(assignment.size() == assignment_.size(),
             "ControllerEngine: rebind assignment size mismatch");
  policy_ = &policy;
  assignment_ = assignment;
}

bool ControllerEngine::done() const noexcept {
  return next_arrival_ >= sessions_.size() && departures_.empty() &&
         batch_.empty() && retries_.empty();
}

util::SimTime ControllerEngine::next_arrival_time() const noexcept {
  return next_arrival_ < sessions_.size()
             ? workload_->sessions()[sessions_[next_arrival_]].connect
             : kNever;
}

std::size_t ControllerEngine::next_arrival_session() const noexcept {
  return sessions_[next_arrival_];
}

util::SimTime ControllerEngine::next_departure_time() const noexcept {
  return departures_.empty() ? kNever : departures_.top().when;
}

std::size_t ControllerEngine::next_departure_session() const noexcept {
  return departures_.top().session_index;
}

util::SimTime ControllerEngine::flush_deadline() const noexcept {
  return batch_.empty() ? kNever : batch_deadline_;
}

util::SimTime ControllerEngine::next_fault_time() const noexcept {
  return next_fault_ < fault_events_.size() ? fault_events_[next_fault_].when
                                            : kNever;
}

util::SimTime ControllerEngine::next_retry_time() const noexcept {
  return retries_.empty() ? kNever : retries_.next_due();
}

sim::Arrival ControllerEngine::make_arrival(std::size_t session_index,
                                            util::SimTime connect) const {
  const trace::SessionRecord& s = workload_->sessions()[session_index];
  sim::Arrival a;
  a.session_index = session_index;
  a.user = s.user;
  a.controller = domain_;
  a.connect = connect;
  a.demand_mbps = s.demand_mbps;
  a.candidates = wlan::candidate_aps(*net_, config_.radio, s.building, s.pos);
  return a;
}

void ControllerEngine::process_arrival() {
  const std::size_t index = sessions_[next_arrival_];
  const trace::SessionRecord& s = workload_->sessions()[index];
  sim::Arrival a = make_arrival(index, s.connect);
  ++next_arrival_;

  if (batch_.empty()) {
    batch_deadline_ = a.connect + util::SimTime(config_.dispatch_window_s);
  }
  batch_.push_back(std::move(a));
  if (config_.dispatch_window_s == 0) flush();
}

void ControllerEngine::process_departure() {
  const Departure d = departures_.top();
  departures_.pop();
  if (injector_ == nullptr) {
    tracker_.disconnect(d.session_index, d.ap);
    policy_->on_disconnect(d.session_index, d.user, d.ap, d.when);
    return;
  }
  // Under faults the station may have been evicted (and possibly
  // re-placed elsewhere) since the departure was queued; active_ holds
  // the truth. A missing entry means the session is waiting in the
  // retry queue or was abandoned — nothing is associated to release.
  const auto it = active_.find(d.session_index);
  if (it == active_.end()) return;
  tracker_.disconnect(d.session_index, it->second.ap);
  policy_->on_disconnect(d.session_index, d.user, it->second.ap, d.when);
  active_.erase(it);
}

void ControllerEngine::abandon_session(std::size_t session_index) {
  ++stats_.abandoned_sessions;
  attempts_.erase(session_index);
  requeued_.erase(session_index);
}

void ControllerEngine::defer_session(std::size_t session_index,
                                     util::SimTime now) {
  const std::uint32_t attempt = ++attempts_[session_index];
  if (attempt >= recovery_.max_attempts) {
    abandon_session(session_index);
    return;
  }
  retries_.push(session_index, now + recovery_.backoff(attempt));
  requeued_.insert(session_index);
  ++stats_.retry_attempts;
}

void ControllerEngine::evict_ap(ApId ap, util::SimTime when) {
  std::vector<std::size_t> victims;
  // s3lint: allow(det-unordered-iter): keys are collected then sorted.
  for (const auto& [session, info] : active_) {
    if (info.ap == ap) victims.push_back(session);
  }
  std::sort(victims.begin(), victims.end());
  for (const std::size_t session : victims) {
    const ActiveInfo info = active_.at(session);
    tracker_.disconnect(session, info.ap);
    policy_->on_disconnect(session, info.user, info.ap, when);
    active_.erase(session);
    ++stats_.fault_evictions;
    // Immediate re-scan: the first re-association attempt happens in
    // the same instant (surviving APs permitting); backoff only kicks
    // in if that attempt fails.
    retries_.push(session, when);
    requeued_.insert(session);
    ++stats_.retry_attempts;
  }
}

void ControllerEngine::recover_ap(ApId ap, util::SimTime when) {
  // Bounded greedy sweep: pull load from the domain's most loaded AP
  // onto the freshly recovered one while the demand gap stays above the
  // hysteresis band. Mirrors core::Rebalancer's donor/receiver step but
  // runs engine-local so the fault path needs no upper-layer calls.
  const auto domain_aps = net_->aps_of_controller(domain_);
  const auto sessions = workload_->sessions();
  for (std::size_t moved = 0; moved < recovery_.max_recovery_migrations;
       ++moved) {
    const double receiver_load = tracker_.demand_mbps(ap);
    ApId donor = kInvalidAp;
    double donor_load = 0.0;
    for (const ApId d : domain_aps) {
      if (d == ap || injector_->ap_down(d, when)) continue;
      const double load = tracker_.demand_mbps(d);
      if (donor == kInvalidAp || load > donor_load) {
        donor = d;
        donor_load = load;
      }
    }
    if (donor == kInvalidAp) break;
    const double gap = donor_load - receiver_load;
    if (gap <= recovery_.recovery_hysteresis_mbps) break;

    std::vector<std::size_t> on_donor;
    // s3lint: allow(det-unordered-iter): keys are collected then sorted.
    for (const auto& [session, info] : active_) {
      if (info.ap == donor) on_donor.push_back(session);
    }
    std::sort(on_donor.begin(), on_donor.end());

    std::size_t best = workload_->size();
    double best_score = gap;  // require strict improvement
    std::vector<ApId> best_candidates;
    for (const std::size_t session : on_donor) {
      const double demand = active_.at(session).demand_mbps;
      if (demand <= 0.0 || demand >= gap) continue;
      if (tracker_.headroom_mbps(ap) < demand) continue;
      const trace::SessionRecord& rec = sessions[session];
      std::vector<ApId> cands =
          wlan::candidate_aps(*net_, config_.radio, rec.building, rec.pos);
      if (std::find(cands.begin(), cands.end(), ap) == cands.end()) continue;
      const double score = std::abs(gap - 2.0 * demand);
      if (score < best_score) {
        best = session;
        best_score = score;
        best_candidates = std::move(cands);
      }
    }
    if (best == workload_->size()) break;

    ActiveInfo& info = active_.at(best);
    tracker_.disconnect(best, donor);
    policy_->on_disconnect(best, info.user, donor, when);
    tracker_.associate(best, ap, info.user, info.demand_mbps);
    assignment_[best] = ap;
    info.ap = ap;
    sim::Arrival moved_arrival;
    moved_arrival.session_index = best;
    moved_arrival.user = info.user;
    moved_arrival.controller = domain_;
    moved_arrival.connect = when;
    moved_arrival.demand_mbps = info.demand_mbps;
    moved_arrival.candidates = std::move(best_candidates);
    policy_->on_associate(moved_arrival, ap);
    ++stats_.recovery_migrations;
  }
}

void ControllerEngine::process_fault() {
  const fault::ApFaultEvent& ev = fault_events_[next_fault_++];
  if (ev.kind == fault::ApFaultEvent::Kind::kDown) {
    evict_ap(ev.ap, ev.when);
  } else {
    recover_ap(ev.ap, ev.when);
  }
}

void ControllerEngine::process_retries() {
  const util::SimTime due = retries_.next_due();
  const auto ready = retries_.pop_due(due);
  const auto sessions = workload_->sessions();
  for (const std::size_t session : ready) {
    const trace::SessionRecord& rec = sessions[session];
    if (rec.disconnect <= due) {
      // Backed off past its own departure: the station left before the
      // controller could re-admit it.
      abandon_session(session);
      continue;
    }
    sim::Arrival a = make_arrival(session, due);
    std::erase_if(a.candidates,
                  [&](ApId ap) { return injector_->ap_down(ap, due); });
    if (a.candidates.empty()) {
      defer_session(session, due);
      continue;
    }
    batch_deadline_ = batch_.empty() ? due : std::min(batch_deadline_, due);
    batch_.push_back(std::move(a));
  }
}

void ControllerEngine::flush() {
  if (batch_.empty()) return;
  const util::SimTime now = batch_deadline_;

  sim::FaultControls faults;
  if (injector_ != nullptr) {
    // Drop candidates that are inside an outage window right now; a
    // request whose whole candidate set is down waits in the retry
    // queue instead of being force-placed on a dead AP.
    std::vector<sim::Arrival> kept;
    kept.reserve(batch_.size());
    for (sim::Arrival& a : batch_) {
      std::erase_if(a.candidates,
                    [&](ApId ap) { return injector_->ap_down(ap, now); });
      if (a.candidates.empty()) {
        defer_session(a.session_index, now);
      } else {
        kept.push_back(std::move(a));
      }
    }
    batch_.swap(kept);
    if (batch_.empty()) {
      batch_deadline_ = kNever;
      return;
    }

    const bool model_out = !injector_->model_available(now);
    faults.model_available = !model_out;
    faults.clique_node_budget = injector_->clique_budget(now);
    faults.force_fallback =
        degradation_.on_batch_start(model_out && policy_->uses_social_model());
  }

  place_batch(batch_, now, faults);
  batch_.clear();
  batch_deadline_ = kNever;
}

std::vector<ApId> ControllerEngine::place_batch(
    std::span<const sim::Arrival> arrivals, util::SimTime now,
    const sim::FaultControls& faults) {
  if (arrivals.empty()) return {};
  const SimMetrics& m = sim_metrics();

  sim::BatchRequest request;
  request.faults = faults;
  sim::BatchResult dispatched;
  {
    util::ScopedTimer timing(m.dispatch);
    request.arrivals = arrivals;
    dispatched = policy_->place_batch(request, tracker_);
  }
  std::vector<ApId>& chosen = dispatched.placements;
  S3_ASSERT(chosen.size() == arrivals.size(),
            "replay: policy returned wrong batch arity");
  if (injector_ != nullptr && !faults.force_fallback) {
    degradation_.on_batch_end(dispatched.full_fidelity);
  }
  const auto sessions = workload_->sessions();
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    const sim::Arrival& a = arrivals[i];
    const ApId ap = chosen[i];
    if (injector_ != nullptr) {
      const auto att = attempts_.find(a.session_index);
      const std::uint32_t attempt = att == attempts_.end() ? 0U : att->second;
      if (injector_->admission_fails(a.session_index, attempt, now)) {
        ++stats_.admission_rejections;
        defer_session(a.session_index, now);
        continue;
      }
    }
    if (std::find(a.candidates.begin(), a.candidates.end(), ap) ==
        a.candidates.end()) {
      // Broken policy contract: keep the placement (the association
      // already happened from the stations' point of view) but make
      // the breach observable instead of trusting silently.
      ++stats_.candidate_violations;
      m.candidate_violations->add();
      S3_POSTCONDITION(false,
                       "replay: policy picked an AP outside the candidate set");
      S3_DEBUG_ASSERT(false,
                      "replay: policy picked an AP outside the candidate set");
    }
    if (tracker_.headroom_mbps(ap) < a.demand_mbps) {
      ++stats_.forced_overloads;
      m.forced_overloads->add();
      // Per-AP breakdown, created lazily — overload is the cold path,
      // so the registry lookup cost does not matter here.
      util::metrics()
          .counter("sim.forced_overloads.ap" + std::to_string(ap))
          ->add();
    }
    tracker_.associate(a.session_index, ap, a.user, a.demand_mbps);
    assignment_[a.session_index] = ap;
    policy_->on_associate(a, ap);
    if (injector_ == nullptr) {
      departures_.push(Departure{sessions[a.session_index].disconnect,
                                 a.session_index, ap, a.user});
    } else {
      active_[a.session_index] = ActiveInfo{a.user, ap, a.demand_mbps};
      if (requeued_.erase(a.session_index) > 0) ++stats_.reassociations;
      attempts_.erase(a.session_index);
      // The departure is queued exactly once per session; after an
      // eviction + re-association the original entry still fires and
      // resolves the then-current AP through active_.
      if (departure_queued_.insert(a.session_index).second) {
        departures_.push(Departure{sessions[a.session_index].disconnect,
                                   a.session_index, ap, a.user});
      }
    }
  }
  ++stats_.num_batches;
  stats_.max_batch_size = std::max(stats_.max_batch_size, arrivals.size());
  m.batches->add();
  m.batch_size->record(arrivals.size());
  // Post-batch structural invariant: per-AP load conservation and
  // β ∈ [1/n, 1]. Evaluated only when contract checking is on.
  if (check::contracts_enabled()) {
    check::validate_load_state(tracker_);
  }
  return std::move(chosen);
}

ControllerEngine::Step ControllerEngine::next_step() const noexcept {
  if (done()) return Step{};
  const util::SimTime ta = next_arrival_time();
  const util::SimTime td = next_departure_time();
  const util::SimTime tf = flush_deadline();
  if (injector_ == nullptr) {
    // Legacy tie order: departures free capacity first, then arrivals
    // join their batch, then due batches flush.
    if (td <= ta && td <= tf) return {StepKind::kDeparture, td};
    if (ta <= tf) return {StepKind::kArrival, ta};
    return {StepKind::kFlush, tf};
  }
  // Fault-aware order: fault flips first (an AP that dies at t must not
  // accept the batch due at t), then the legacy order, then due retries
  // merge into the batch, then flushes.
  const util::SimTime tfault = next_fault_time();
  const util::SimTime tr = next_retry_time();
  if (tfault != kNever && tfault <= td && tfault <= ta && tfault <= tr &&
      tfault <= tf) {
    return {StepKind::kFault, tfault};
  }
  if (td != kNever && td <= ta && td <= tr && td <= tf) {
    return {StepKind::kDeparture, td};
  }
  if (ta != kNever && ta <= tr && ta <= tf) return {StepKind::kArrival, ta};
  if (tr != kNever && tr <= tf) return {StepKind::kRetries, tr};
  return {StepKind::kFlush, tf};
}

std::uint64_t ControllerEngine::step_digest() const noexcept {
  std::uint64_t h = 0x73746570ULL;  // "step"
  const auto mix = [&h](std::uint64_t v) noexcept {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  };
  mix(next_arrival_);
  mix(batch_.size());
  mix(departures_.size());
  mix(retries_.size());
  mix(active_.size());
  mix(stats_.num_batches);
  mix(stats_.forced_overloads);
  mix(stats_.fault_evictions);
  mix(stats_.reassociations);
  mix(stats_.retry_attempts);
  mix(stats_.admission_rejections);
  mix(stats_.abandoned_sessions);
  mix(stats_.dropped_sessions);
  mix(static_cast<std::uint64_t>(degradation_.state()));
  return h;
}

std::uint64_t ControllerEngine::apply_step(StepKind kind) {
  switch (kind) {
    case StepKind::kFault:
      process_fault();
      break;
    case StepKind::kDeparture:
      process_departure();
      break;
    case StepKind::kArrival:
      process_arrival();
      break;
    case StepKind::kRetries:
      process_retries();
      break;
    case StepKind::kFlush:
      flush();
      break;
    case StepKind::kNone:
      break;
  }
  return step_digest();
}

fault::ReplicaSnapshot ControllerEngine::snapshot() const {
  fault::ReplicaSnapshot snap;
  snap.controller = domain_;
  snap.placements.reserve(sessions_.size());
  for (const std::size_t s : sessions_) {
    snap.placements.push_back({s, assignment_[s]});
  }
  snap.retries = retries_.sorted_entries();
  snap.attempts.reserve(attempts_.size());
  // s3lint: allow(det-unordered-iter): entries are collected then sorted.
  for (const auto& [session, count] : attempts_) {
    snap.attempts.push_back({session, count});
  }
  std::sort(snap.attempts.begin(), snap.attempts.end(),
            [](const fault::SessionAttempts& a, const fault::SessionAttempts& b) {
              return a.session_index < b.session_index;
            });
  snap.health = degradation_.state();
  snap.clean_run = degradation_.clean_run();
  snap.degradation = degradation_.stats();
  snap.policy_digest = policy_->state_digest();
  snap.stats = stats_;
  return snap;
}

void ControllerEngine::drop_next_arrival() {
  S3_REQUIRE(next_arrival_ < sessions_.size(),
             "drop_next_arrival: no pending arrival");
  ++next_arrival_;
  ++stats_.dropped_sessions;
}

void ControllerEngine::drop_pending_batch() {
  for (const sim::Arrival& a : batch_) {
    attempts_.erase(a.session_index);
    requeued_.erase(a.session_index);
    ++stats_.dropped_sessions;
  }
  batch_.clear();
  batch_deadline_ = kNever;
}

void ControllerEngine::postpone_retries_until(util::SimTime t) {
  retries_.postpone_until(t);
}

void ControllerEngine::run() {
  while (!done()) apply_step(next_step().kind);
  finalize();
}

void ControllerEngine::finalize() {
  stats_.mean_batch_size =
      stats_.num_batches > 0
          ? static_cast<double>(stats_.num_sessions) /
                static_cast<double>(stats_.num_batches)
          : 0.0;
  if (injector_ == nullptr) return;
  const fault::DegradationStats& d = degradation_.stats();
  stats_.degraded_batches = d.degraded_batches;
  stats_.transitions_to_degraded = d.to_degraded;
  stats_.transitions_to_recovering = d.to_recovering;
  stats_.transitions_to_healthy = d.to_healthy;
  const FaultMetrics& fm = fault_metrics();
  fm.evictions->add(stats_.fault_evictions);
  fm.reassociations->add(stats_.reassociations);
  fm.retry_attempts->add(stats_.retry_attempts);
  fm.admission_rejections->add(stats_.admission_rejections);
  fm.abandoned->add(stats_.abandoned_sessions);
  fm.degraded_batches->add(stats_.degraded_batches);
  fm.to_degraded->add(stats_.transitions_to_degraded);
  fm.to_recovering->add(stats_.transitions_to_recovering);
  fm.to_healthy->add(stats_.transitions_to_healthy);
  fm.recovery_migrations->add(stats_.recovery_migrations);
}

}  // namespace s3::runtime
