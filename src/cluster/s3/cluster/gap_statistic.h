// Gap statistic for choosing k (Tibshirani, Walther & Hastie 2001).
//
// Gap(k) = (1/B) Σ_b log(W_kb) − log(W_k), where W_kb is the
// within-cluster dispersion of the b-th reference data set drawn
// uniformly over the observed per-dimension ranges. The optimal k is
// the smallest k with Gap(k) >= Gap(k+1) − s_{k+1}, where s_k is the
// reference-dispersion standard deviation inflated by sqrt(1 + 1/B).
// The paper applies this to user application profiles and finds k = 4
// (Fig. 7).
#pragma once

#include <cstdint>
#include <vector>

#include "s3/cluster/kmeans.h"

namespace s3::cluster {

/// Reference null distribution (Tibshirani et al. §3).
enum class GapReference : std::uint8_t {
  /// Uniform over the raw per-feature bounding box (method a).
  kUniformBox = 0,
  /// Uniform over the principal-component-aligned bounding box
  /// (method b) — the right choice for correlated / degenerate data
  /// such as probability simplices (our application profiles), where
  /// the raw box wildly over-disperses the reference.
  kPcaAlignedBox = 1,
};

struct GapStatisticConfig {
  std::size_t max_k = 10;
  std::size_t num_references = 10;  ///< B
  std::size_t kmeans_restarts = 4;
  std::size_t kmeans_max_iterations = 100;
  std::uint64_t seed = 7;
  GapReference reference = GapReference::kPcaAlignedBox;
};

struct GapStatisticResult {
  /// gap[k-1] = Gap(k) for k = 1..max_k.
  std::vector<double> gap;
  /// s[k-1] = s_k (already inflated by sqrt(1 + 1/B)).
  std::vector<double> s;
  /// log(W_k) on the observed data.
  std::vector<double> log_w;
  /// Smallest k with Gap(k) >= Gap(k+1) − s_{k+1}; max_k if the
  /// criterion never fires.
  std::size_t optimal_k = 0;
};

GapStatisticResult gap_statistic(const Dataset& data,
                                 const GapStatisticConfig& config);

}  // namespace s3::cluster
