#include "s3/cluster/pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "s3/util/error.h"

namespace s3::cluster {

EigenResult symmetric_eigen(const std::vector<double>& matrix,
                            std::size_t dim, std::size_t max_sweeps) {
  S3_REQUIRE(matrix.size() == dim * dim, "symmetric_eigen: size mismatch");
  std::vector<double> a = matrix;  // working copy, mutated in place
  std::vector<double> v(dim * dim, 0.0);
  for (std::size_t i = 0; i < dim; ++i) v[i * dim + i] = 1.0;

  auto off_diagonal_norm = [&]() {
    double s = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      for (std::size_t j = i + 1; j < dim; ++j) {
        s += a[i * dim + j] * a[i * dim + j];
      }
    }
    return std::sqrt(s);
  };

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() < 1e-13) break;
    for (std::size_t p = 0; p < dim; ++p) {
      for (std::size_t q = p + 1; q < dim; ++q) {
        const double apq = a[p * dim + q];
        if (std::abs(apq) < 1e-15) continue;
        const double app = a[p * dim + p];
        const double aqq = a[q * dim + q];
        const double theta = 0.5 * (aqq - app) / apq;
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < dim; ++k) {
          const double akp = a[k * dim + p];
          const double akq = a[k * dim + q];
          a[k * dim + p] = c * akp - s * akq;
          a[k * dim + q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < dim; ++k) {
          const double apk = a[p * dim + k];
          const double aqk = a[q * dim + k];
          a[p * dim + k] = c * apk - s * aqk;
          a[q * dim + k] = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < dim; ++k) {
          const double vkp = v[k * dim + p];
          const double vkq = v[k * dim + q];
          v[k * dim + p] = c * vkp - s * vkq;
          v[k * dim + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort by eigenvalue, descending; eigenvector i is column i of v.
  std::vector<std::size_t> order(dim);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return a[x * dim + x] > a[y * dim + y];
  });

  EigenResult result;
  result.eigenvalues.resize(dim);
  result.eigenvectors.resize(dim * dim);
  for (std::size_t r = 0; r < dim; ++r) {
    const std::size_t col = order[r];
    result.eigenvalues[r] = a[col * dim + col];
    for (std::size_t k = 0; k < dim; ++k) {
      result.eigenvectors[r * dim + k] = v[k * dim + col];
    }
  }
  return result;
}

PcaBasis pca(const std::vector<double>& data, std::size_t n,
             std::size_t dim) {
  S3_REQUIRE(n >= 2, "pca: need at least two points");
  S3_REQUIRE(data.size() == n * dim, "pca: size mismatch");

  PcaBasis basis;
  basis.mean.assign(dim, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < dim; ++d) basis.mean[d] += data[i * dim + d];
  }
  for (double& m : basis.mean) m /= static_cast<double>(n);

  std::vector<double> cov(dim * dim, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d1 = 0; d1 < dim; ++d1) {
      const double x1 = data[i * dim + d1] - basis.mean[d1];
      for (std::size_t d2 = d1; d2 < dim; ++d2) {
        cov[d1 * dim + d2] += x1 * (data[i * dim + d2] - basis.mean[d2]);
      }
    }
  }
  for (std::size_t d1 = 0; d1 < dim; ++d1) {
    for (std::size_t d2 = d1; d2 < dim; ++d2) {
      cov[d1 * dim + d2] /= static_cast<double>(n - 1);
      cov[d2 * dim + d1] = cov[d1 * dim + d2];
    }
  }

  EigenResult eig = symmetric_eigen(cov, dim);
  basis.components = std::move(eig.eigenvectors);
  basis.variances = std::move(eig.eigenvalues);
  return basis;
}

void to_pca_frame(const PcaBasis& basis, const double* x, double* y) {
  const std::size_t dim = basis.mean.size();
  for (std::size_t r = 0; r < dim; ++r) {
    double s = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      s += basis.components[r * dim + d] * (x[d] - basis.mean[d]);
    }
    y[r] = s;
  }
}

void from_pca_frame(const PcaBasis& basis, const double* y, double* x) {
  const std::size_t dim = basis.mean.size();
  for (std::size_t d = 0; d < dim; ++d) {
    double s = basis.mean[d];
    for (std::size_t r = 0; r < dim; ++r) {
      s += basis.components[r * dim + d] * y[r];
    }
    x[d] = s;
  }
}

}  // namespace s3::cluster
