#include "s3/cluster/gap_statistic.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "s3/cluster/pca.h"

namespace s3::cluster {

namespace {

/// Reference set: uniform over the observed per-feature bounding box.
Dataset uniform_box_reference(const Dataset& data, util::Rng& rng) {
  const std::size_t dim = data.dim;
  std::vector<double> lo(dim, std::numeric_limits<double>::infinity());
  std::vector<double> hi(dim, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < data.num_points; ++i) {
    const auto p = data.point(i);
    for (std::size_t d = 0; d < dim; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }
  Dataset ref;
  ref.num_points = data.num_points;
  ref.dim = dim;
  ref.values.resize(data.num_points * dim);
  for (std::size_t i = 0; i < data.num_points; ++i) {
    for (std::size_t d = 0; d < dim; ++d) {
      ref.values[i * dim + d] =
          lo[d] < hi[d] ? rng.uniform(lo[d], hi[d]) : lo[d];
    }
  }
  return ref;
}

/// Reference set: uniform over the PCA-aligned bounding box, mapped
/// back into feature space (Tibshirani's method (b)).
Dataset pca_box_reference(const Dataset& data, const PcaBasis& basis,
                          util::Rng& rng) {
  const std::size_t dim = data.dim;
  // Ranges of the data in the PCA frame.
  std::vector<double> lo(dim, std::numeric_limits<double>::infinity());
  std::vector<double> hi(dim, -std::numeric_limits<double>::infinity());
  std::vector<double> y(dim);
  for (std::size_t i = 0; i < data.num_points; ++i) {
    to_pca_frame(basis, data.values.data() + i * dim, y.data());
    for (std::size_t d = 0; d < dim; ++d) {
      lo[d] = std::min(lo[d], y[d]);
      hi[d] = std::max(hi[d], y[d]);
    }
  }
  Dataset ref;
  ref.num_points = data.num_points;
  ref.dim = dim;
  ref.values.resize(data.num_points * dim);
  for (std::size_t i = 0; i < data.num_points; ++i) {
    for (std::size_t d = 0; d < dim; ++d) {
      y[d] = lo[d] < hi[d] ? rng.uniform(lo[d], hi[d]) : lo[d];
    }
    from_pca_frame(basis, y.data(), ref.values.data() + i * dim);
  }
  return ref;
}

double log_dispersion(const Dataset& data, std::size_t k,
                      const GapStatisticConfig& cfg, std::uint64_t seed) {
  KMeansConfig kc;
  kc.k = k;
  kc.restarts = cfg.kmeans_restarts;
  kc.max_iterations = cfg.kmeans_max_iterations;
  kc.seed = seed;
  const double w = kmeans(data, kc).inertia;
  // Guard against log(0) for degenerate (duplicate-point) data.
  return std::log(std::max(w, 1e-12));
}

}  // namespace

GapStatisticResult gap_statistic(const Dataset& data,
                                 const GapStatisticConfig& config) {
  S3_REQUIRE(config.max_k >= 2, "gap_statistic: max_k must be >= 2");
  S3_REQUIRE(config.num_references >= 2,
             "gap_statistic: need at least 2 reference sets");
  S3_REQUIRE(data.num_points >= config.max_k,
             "gap_statistic: fewer points than max_k");

  util::Rng master(config.seed);
  GapStatisticResult result;
  result.gap.resize(config.max_k);
  result.s.resize(config.max_k);
  result.log_w.resize(config.max_k);

  // Draw the B reference data sets once and reuse across k (the
  // Tibshirani et al. procedure).
  PcaBasis basis;
  if (config.reference == GapReference::kPcaAlignedBox) {
    basis = pca(data.values, data.num_points, data.dim);
  }
  std::vector<Dataset> references;
  references.reserve(config.num_references);
  for (std::size_t b = 0; b < config.num_references; ++b) {
    util::Rng rng = master.fork();
    references.push_back(config.reference == GapReference::kPcaAlignedBox
                             ? pca_box_reference(data, basis, rng)
                             : uniform_box_reference(data, rng));
  }

  util::SplitMix64 seeds(config.seed ^ 0x6a7057a7ULL);
  for (std::size_t k = 1; k <= config.max_k; ++k) {
    result.log_w[k - 1] = log_dispersion(data, k, config, seeds.next());

    std::vector<double> ref_log_w(config.num_references);
    double mean = 0.0;
    for (std::size_t b = 0; b < config.num_references; ++b) {
      ref_log_w[b] = log_dispersion(references[b], k, config, seeds.next());
      mean += ref_log_w[b];
    }
    mean /= static_cast<double>(config.num_references);

    double sd = 0.0;
    for (double v : ref_log_w) sd += (v - mean) * (v - mean);
    sd = std::sqrt(sd / static_cast<double>(config.num_references));

    result.gap[k - 1] = mean - result.log_w[k - 1];
    result.s[k - 1] =
        sd * std::sqrt(1.0 + 1.0 / static_cast<double>(config.num_references));
  }

  result.optimal_k = config.max_k;
  for (std::size_t k = 1; k < config.max_k; ++k) {
    if (result.gap[k - 1] >= result.gap[k] - result.s[k]) {
      result.optimal_k = k;
      break;
    }
  }
  return result;
}

}  // namespace s3::cluster
