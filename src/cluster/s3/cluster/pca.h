// Small dense symmetric eigendecomposition (cyclic Jacobi) and PCA
// helpers for the gap statistic's principal-component-aligned
// reference distribution (Tibshirani et al. 2001, method (b)).
//
// Dimensions here are tiny (6 for application profiles), so the O(d^3)
// Jacobi sweep is the right tool: no dependencies, bit-reproducible.
#pragma once

#include <cstddef>
#include <vector>

namespace s3::cluster {

/// Eigendecomposition of a symmetric d x d matrix (row-major).
struct EigenResult {
  std::vector<double> eigenvalues;   ///< descending
  std::vector<double> eigenvectors;  ///< row-major d x d; row i = vector i
};

/// Cyclic Jacobi. `matrix` must be symmetric; converges quadratically.
EigenResult symmetric_eigen(const std::vector<double>& matrix,
                            std::size_t dim, std::size_t max_sweeps = 64);

/// PCA basis of row-major `n x dim` data (column-mean-centered
/// covariance). Returns component rows (descending variance) plus the
/// column means.
struct PcaBasis {
  std::vector<double> components;  ///< row-major dim x dim
  std::vector<double> mean;        ///< column means, size dim
  std::vector<double> variances;   ///< per-component, descending
};

PcaBasis pca(const std::vector<double>& data, std::size_t n, std::size_t dim);

/// Projects a point into the PCA frame: y = V (x - mean).
void to_pca_frame(const PcaBasis& basis, const double* x, double* y);

/// Maps a PCA-frame point back: x = V^T y + mean.
void from_pca_frame(const PcaBasis& basis, const double* y, double* x);

}  // namespace s3::cluster
