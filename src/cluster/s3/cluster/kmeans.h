// k-means clustering (§III-D-2).
//
// The paper clusters users' normalized application-usage vectors with
// k-means and picks k via the gap statistic (k = 4 on the SJTU trace).
// Plain Lloyd iterations with k-means++ seeding and multiple restarts;
// deterministic in the provided seed.
#pragma once

#include <cstdint>
#include <vector>

#include "s3/util/rng.h"

namespace s3::cluster {

/// Row-major point set.
struct Dataset {
  std::vector<double> values;  ///< size = num_points * dim
  std::size_t num_points = 0;
  std::size_t dim = 0;

  std::span<const double> point(std::size_t i) const {
    S3_REQUIRE(i < num_points, "Dataset: point index out of range");
    return std::span<const double>(values).subspan(i * dim, dim);
  }
};

struct KMeansConfig {
  std::size_t k = 4;
  std::size_t max_iterations = 100;
  std::size_t restarts = 4;  ///< keep the best of this many runs
  std::uint64_t seed = 1;
};

struct KMeansResult {
  /// Row-major k x dim centroid matrix.
  std::vector<double> centroids;
  std::size_t k = 0;
  std::size_t dim = 0;
  /// Cluster id per point.
  std::vector<std::size_t> assignment;
  /// Within-cluster sum of squared distances — the dispersion W_k that
  /// the gap statistic compares.
  double inertia = 0.0;
  std::size_t iterations = 0;

  std::span<const double> centroid(std::size_t c) const {
    S3_REQUIRE(c < k, "KMeansResult: centroid index out of range");
    return std::span<const double>(centroids).subspan(c * dim, dim);
  }
};

/// Runs k-means. Requires data.num_points >= config.k >= 1.
KMeansResult kmeans(const Dataset& data, const KMeansConfig& config);

/// Squared Euclidean distance between two equal-length vectors.
double squared_distance(std::span<const double> a,
                        std::span<const double> b) noexcept;

}  // namespace s3::cluster
