#include "s3/cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace s3::cluster {

double squared_distance(std::span<const double> a,
                        std::span<const double> b) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

namespace {

/// k-means++ seeding: first centroid uniform, then proportional to the
/// squared distance to the nearest chosen centroid.
std::vector<double> seed_centroids(const Dataset& data, std::size_t k,
                                   util::Rng& rng) {
  const std::size_t dim = data.dim;
  std::vector<double> centroids;
  centroids.reserve(k * dim);

  const std::size_t first = rng.index(data.num_points);
  const auto p0 = data.point(first);
  centroids.insert(centroids.end(), p0.begin(), p0.end());

  std::vector<double> d2(data.num_points,
                         std::numeric_limits<double>::infinity());
  for (std::size_t c = 1; c < k; ++c) {
    const auto last = std::span<const double>(centroids)
                          .subspan((c - 1) * dim, dim);
    for (std::size_t i = 0; i < data.num_points; ++i) {
      d2[i] = std::min(d2[i], squared_distance(data.point(i), last));
    }
    double total = 0.0;
    for (double v : d2) total += v;
    std::size_t pick;
    if (total <= 0.0) {
      pick = rng.index(data.num_points);  // all points identical
    } else {
      pick = rng.weighted_index(d2);
    }
    const auto p = data.point(pick);
    centroids.insert(centroids.end(), p.begin(), p.end());
  }
  return centroids;
}

struct LloydOutcome {
  std::vector<double> centroids;
  std::vector<std::size_t> assignment;
  double inertia = 0.0;
  std::size_t iterations = 0;
};

LloydOutcome lloyd(const Dataset& data, std::size_t k,
                   std::vector<double> centroids, std::size_t max_iterations,
                   util::Rng& rng) {
  const std::size_t dim = data.dim;
  std::vector<std::size_t> assignment(data.num_points, 0);
  std::vector<double> sums(k * dim, 0.0);
  std::vector<std::size_t> counts(k, 0);

  std::size_t iter = 0;
  bool changed = true;
  while (changed && iter < max_iterations) {
    ++iter;
    changed = false;

    // Assignment step.
    for (std::size_t i = 0; i < data.num_points; ++i) {
      const auto p = data.point(i);
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = squared_distance(
            p, std::span<const double>(centroids).subspan(c * dim, dim));
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (assignment[i] != best_c) {
        assignment[i] = best_c;
        changed = true;
      }
    }

    // Update step.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < data.num_points; ++i) {
      const auto p = data.point(i);
      const std::size_t c = assignment[i];
      ++counts[c];
      for (std::size_t d = 0; d < dim; ++d) sums[c * dim + d] += p[d];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at the point farthest from its
        // centroid (standard Lloyd repair).
        double worst = -1.0;
        std::size_t worst_i = 0;
        for (std::size_t i = 0; i < data.num_points; ++i) {
          const std::size_t ci = assignment[i];
          const double d = squared_distance(
              data.point(i),
              std::span<const double>(centroids).subspan(ci * dim, dim));
          if (d > worst) {
            worst = d;
            worst_i = i;
          }
        }
        const auto p = data.point(worst_i);
        std::copy(p.begin(), p.end(), centroids.begin() +
                                          static_cast<std::ptrdiff_t>(c * dim));
        changed = true;
        continue;
      }
      for (std::size_t d = 0; d < dim; ++d) {
        centroids[c * dim + d] =
            sums[c * dim + d] / static_cast<double>(counts[c]);
      }
    }
    (void)rng;
  }

  double inertia = 0.0;
  for (std::size_t i = 0; i < data.num_points; ++i) {
    inertia += squared_distance(
        data.point(i), std::span<const double>(centroids)
                           .subspan(assignment[i] * dim, dim));
  }
  return {std::move(centroids), std::move(assignment), inertia, iter};
}

}  // namespace

KMeansResult kmeans(const Dataset& data, const KMeansConfig& config) {
  S3_REQUIRE(data.dim > 0, "kmeans: zero-dimensional data");
  S3_REQUIRE(data.values.size() == data.num_points * data.dim,
             "kmeans: dataset size mismatch");
  S3_REQUIRE(config.k >= 1, "kmeans: k must be >= 1");
  S3_REQUIRE(data.num_points >= config.k, "kmeans: fewer points than k");
  S3_REQUIRE(config.restarts >= 1, "kmeans: restarts must be >= 1");

  util::Rng master(config.seed);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();

  for (std::size_t r = 0; r < config.restarts; ++r) {
    util::Rng rng = master.fork();
    LloydOutcome out =
        lloyd(data, config.k, seed_centroids(data, config.k, rng),
              config.max_iterations, rng);
    if (out.inertia < best.inertia) {
      best.centroids = std::move(out.centroids);
      best.assignment = std::move(out.assignment);
      best.inertia = out.inertia;
      best.iterations = out.iterations;
      best.k = config.k;
      best.dim = data.dim;
    }
  }
  return best;
}

}  // namespace s3::cluster
