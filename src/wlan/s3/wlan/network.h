// Assembled campus network: buildings, controller domains, APs.
//
// The Network is an immutable description shared by the trace
// generator, the replay engine and the selection policies. Dynamic
// state (who is associated where, current loads) lives in
// s3::sim::ApLoadTracker, not here.
#pragma once

#include <span>
#include <vector>

#include "s3/util/error.h"
#include "s3/wlan/access_point.h"

namespace s3::wlan {

class Network {
 public:
  Network(std::vector<BuildingConfig> buildings,
          std::vector<ControllerConfig> controllers,
          std::vector<ApConfig> aps);

  std::size_t num_buildings() const noexcept { return buildings_.size(); }
  std::size_t num_controllers() const noexcept { return controllers_.size(); }
  std::size_t num_aps() const noexcept { return aps_.size(); }

  const BuildingConfig& building(BuildingId b) const {
    S3_REQUIRE(b < buildings_.size(), "building id out of range");
    return buildings_[b];
  }
  const ControllerConfig& controller(ControllerId c) const {
    S3_REQUIRE(c < controllers_.size(), "controller id out of range");
    return controllers_[c];
  }
  const ApConfig& ap(ApId a) const {
    S3_REQUIRE(a < aps_.size(), "ap id out of range");
    return aps_[a];
  }

  std::span<const BuildingConfig> buildings() const noexcept {
    return buildings_;
  }
  std::span<const ControllerConfig> controllers() const noexcept {
    return controllers_;
  }
  std::span<const ApConfig> aps() const noexcept { return aps_; }

  /// APs in one controller domain.
  std::span<const ApId> aps_of_controller(ControllerId c) const {
    S3_REQUIRE(c < controllers_.size(), "controller id out of range");
    return domain_aps_[c];
  }

  /// The (single, in this deployment) controller serving a building.
  ControllerId controller_of_building(BuildingId b) const {
    S3_REQUIRE(b < buildings_.size(), "building id out of range");
    return building_controller_[b];
  }

  ControllerId controller_of_ap(ApId a) const { return ap(a).controller; }

 private:
  std::vector<BuildingConfig> buildings_;
  std::vector<ControllerConfig> controllers_;
  std::vector<ApConfig> aps_;
  std::vector<std::vector<ApId>> domain_aps_;       // by controller
  std::vector<ControllerId> building_controller_;   // by building
};

/// Parameters for the regular campus builder.
struct CampusLayout {
  std::size_t num_buildings = 8;
  std::size_t aps_per_building = 12;
  double ap_capacity_mbps = 20.0;
  double building_width_m = 60.0;
  double building_depth_m = 40.0;
  double campus_pitch_m = 120.0;  ///< spacing between building origins
};

/// Builds an SJTU-like campus: `num_buildings` buildings on a square
/// grid, one controller per building, APs on a regular grid inside each
/// building. With the paper-scale parameters (22 buildings, ~15 APs
/// each) this reproduces the trace deployment's 334-AP shape.
Network make_campus(const CampusLayout& layout);

}  // namespace s3::wlan
