// Static description of the enterprise-WLAN entities (§III-A, Fig. 1):
// light-weight APs grouped under WLAN controllers, one controller per
// building in the SJTU deployment.
#pragma once

#include <cstdint>
#include <string>

#include "s3/util/ids.h"

namespace s3::wlan {

/// Physical position on the campus plane, metres.
struct Position {
  double x = 0.0;
  double y = 0.0;
};

double distance(const Position& a, const Position& b) noexcept;

/// Immutable configuration of one access point.
struct ApConfig {
  ApId id = kInvalidAp;
  ControllerId controller = kInvalidController;
  BuildingId building = 0;
  Position pos;
  /// Effective shared downlink+uplink capacity in Mbit/s — the W(i)
  /// bandwidth bound of Definition 1.
  double capacity_mbps = 20.0;
  /// Transmit power in dBm, input to the radio model.
  double tx_power_dbm = 20.0;
};

/// Immutable configuration of one controller domain.
struct ControllerConfig {
  ControllerId id = kInvalidController;
  BuildingId building = 0;
  std::string name;
};

/// Immutable configuration of one building.
struct BuildingConfig {
  BuildingId id = 0;
  Position origin;       ///< south-west corner on the campus plane
  double width_m = 60.0;
  double depth_m = 40.0;
};

}  // namespace s3::wlan
