// 802.11 contention efficiency.
//
// A cell's usable throughput is not a constant: CSMA/CA arbitration
// burns airtime as more stations contend (collisions, backoff, and the
// slowest station's rate anchoring). The classic measurements (Heusse
// et al. 2003, Jun et al. 2007) show aggregate MAC efficiency decaying
// from ~90 % with one station toward ~50-60 % with dozens.
//
// The model here is the standard hyperbolic fit
//     eff(n) = floor + (1 - floor) / (1 + k * (n - 1)),
// which matches those measurements well and is monotone, bounded and
// cheap. It feeds the fairness analysis (an AP crowded with stations
// serves less than its nominal capacity) and is available to policies
// that want contention-aware headroom.
#pragma once

#include <cstddef>

namespace s3::wlan {

struct ContentionModel {
  /// Efficiency with a single associated station.
  double single_station_efficiency = 0.9;
  /// Asymptotic efficiency under heavy contention.
  double efficiency_floor = 0.55;
  /// Decay rate per additional contending station.
  double decay_per_station = 0.08;

  /// MAC efficiency for `stations` associated stations, in
  /// (0, single_station_efficiency]. Zero stations count as one (the
  /// medium is idle; nominal efficiency applies to the first arrival).
  double efficiency(std::size_t stations) const noexcept;

  /// Usable cell throughput: nominal capacity times efficiency.
  double effective_capacity_mbps(double nominal_mbps,
                                 std::size_t stations) const noexcept;
};

}  // namespace s3::wlan
