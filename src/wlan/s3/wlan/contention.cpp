#include "s3/wlan/contention.h"

#include <algorithm>

namespace s3::wlan {

double ContentionModel::efficiency(std::size_t stations) const noexcept {
  const double n = stations == 0 ? 1.0 : static_cast<double>(stations);
  const double span =
      std::max(0.0, single_station_efficiency - efficiency_floor);
  return efficiency_floor +
         span / (1.0 + decay_per_station * (n - 1.0));
}

double ContentionModel::effective_capacity_mbps(
    double nominal_mbps, std::size_t stations) const noexcept {
  return nominal_mbps * efficiency(stations);
}

}  // namespace s3::wlan
