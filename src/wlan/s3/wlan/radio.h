// Indoor radio propagation and candidate-AP computation.
//
// By default a station associates with the strongest-RSSI AP (§I); a
// controller may instead choose any AP whose signal at the station
// clears the association threshold. The log-distance path-loss model
// here produces both the default strongest-signal choice and the
// candidate set that LLF / S3 select from.
#pragma once

#include <vector>

#include "s3/util/ids.h"
#include "s3/wlan/network.h"

namespace s3::wlan {

/// Log-distance path-loss model: rssi = tx - PL(d0) - 10 n log10(d/d0).
/// Deterministic (shadowing, if desired, is sampled by the caller and
/// added to the threshold), so candidate sets are reproducible.
struct RadioModel {
  double path_loss_exponent = 3.0;   ///< indoor with obstructions
  double reference_loss_db = 40.0;   ///< PL at d0 = 1 m, 2.4 GHz
  /// Association cutoff. With the defaults above the audible radius is
  /// ~19 m, so a station hears the handful of APs near its room, not
  /// the whole building — the controller can only choose among those,
  /// which is what makes co-leavings hurt (§III-C).
  double association_threshold_dbm = -62.0;
  /// Stations only hear APs of their own building (walls between
  /// buildings attenuate below the threshold at SJTU-like spacing).
  bool same_building_only = true;

  /// Received signal strength (dBm) of `ap` at `at`.
  double rssi_dbm(const ApConfig& ap, const Position& at) const noexcept;
};

/// APs audible from `at` (RSSI above threshold), strongest first.
/// If no AP clears the threshold, returns the single strongest AP of
/// the building so that a station indoors is never orphaned.
std::vector<ApId> candidate_aps(const Network& net, const RadioModel& radio,
                                BuildingId building, const Position& at);

/// The default 802.11 behaviour: the strongest-RSSI AP at `at`.
ApId strongest_ap(const Network& net, const RadioModel& radio,
                  BuildingId building, const Position& at);

}  // namespace s3::wlan
