#include "s3/wlan/radio.h"

#include <algorithm>
#include <cmath>

namespace s3::wlan {

double RadioModel::rssi_dbm(const ApConfig& ap,
                            const Position& at) const noexcept {
  const double d = std::max(distance(ap.pos, at), 1.0);  // clamp to d0 = 1 m
  return ap.tx_power_dbm - reference_loss_db -
         10.0 * path_loss_exponent * std::log10(d);
}

std::vector<ApId> candidate_aps(const Network& net, const RadioModel& radio,
                                BuildingId building, const Position& at) {
  struct Scored {
    ApId id;
    double rssi;
  };
  std::vector<Scored> heard;
  ApId best_in_building = kInvalidAp;
  double best_rssi = -1e9;

  for (const ApConfig& ap : net.aps()) {
    if (radio.same_building_only && ap.building != building) continue;
    const double rssi = radio.rssi_dbm(ap, at);
    if (ap.building == building && rssi > best_rssi) {
      best_rssi = rssi;
      best_in_building = ap.id;
    }
    if (rssi >= radio.association_threshold_dbm) {
      heard.push_back({ap.id, rssi});
    }
  }
  if (heard.empty()) {
    S3_ASSERT(best_in_building != kInvalidAp,
              "candidate_aps: building without APs");
    return {best_in_building};
  }
  std::sort(heard.begin(), heard.end(), [](const Scored& a, const Scored& b) {
    if (a.rssi != b.rssi) return a.rssi > b.rssi;
    return a.id < b.id;  // deterministic tie-break
  });
  std::vector<ApId> out;
  out.reserve(heard.size());
  for (const Scored& s : heard) out.push_back(s.id);
  return out;
}

ApId strongest_ap(const Network& net, const RadioModel& radio,
                  BuildingId building, const Position& at) {
  return candidate_aps(net, radio, building, at).front();
}

}  // namespace s3::wlan
