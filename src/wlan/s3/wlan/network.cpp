#include "s3/wlan/network.h"

#include <cmath>
#include <string>
#include <utility>

namespace s3::wlan {

double distance(const Position& a, const Position& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Network::Network(std::vector<BuildingConfig> buildings,
                 std::vector<ControllerConfig> controllers,
                 std::vector<ApConfig> aps)
    : buildings_(std::move(buildings)),
      controllers_(std::move(controllers)),
      aps_(std::move(aps)) {
  S3_REQUIRE(!buildings_.empty(), "Network: no buildings");
  S3_REQUIRE(!controllers_.empty(), "Network: no controllers");
  S3_REQUIRE(!aps_.empty(), "Network: no APs");

  // Ids must be dense and positional.
  for (std::size_t i = 0; i < buildings_.size(); ++i) {
    S3_REQUIRE(buildings_[i].id == i, "Network: building ids must be dense");
  }
  for (std::size_t i = 0; i < controllers_.size(); ++i) {
    S3_REQUIRE(controllers_[i].id == i, "Network: controller ids must be dense");
    S3_REQUIRE(controllers_[i].building < buildings_.size(),
               "Network: controller references unknown building");
  }
  domain_aps_.resize(controllers_.size());
  building_controller_.assign(buildings_.size(), kInvalidController);
  for (const ControllerConfig& c : controllers_) {
    S3_REQUIRE(building_controller_[c.building] == kInvalidController,
               "Network: more than one controller per building");
    building_controller_[c.building] = c.id;
  }
  for (std::size_t i = 0; i < aps_.size(); ++i) {
    const ApConfig& a = aps_[i];
    S3_REQUIRE(a.id == i, "Network: ap ids must be dense");
    S3_REQUIRE(a.controller < controllers_.size(),
               "Network: ap references unknown controller");
    S3_REQUIRE(a.building < buildings_.size(),
               "Network: ap references unknown building");
    S3_REQUIRE(a.capacity_mbps > 0.0, "Network: ap capacity must be positive");
    domain_aps_[a.controller].push_back(a.id);
  }
  for (std::size_t c = 0; c < domain_aps_.size(); ++c) {
    S3_REQUIRE(!domain_aps_[c].empty(),
               "Network: controller domain " + std::to_string(c) + " has no APs");
  }
}

Network make_campus(const CampusLayout& layout) {
  S3_REQUIRE(layout.num_buildings > 0, "make_campus: no buildings");
  S3_REQUIRE(layout.aps_per_building > 0, "make_campus: no APs per building");
  S3_REQUIRE(layout.ap_capacity_mbps > 0.0, "make_campus: bad capacity");

  std::vector<BuildingConfig> buildings;
  std::vector<ControllerConfig> controllers;
  std::vector<ApConfig> aps;

  const auto grid =
      static_cast<std::size_t>(std::ceil(std::sqrt(
          static_cast<double>(layout.num_buildings))));

  for (std::size_t b = 0; b < layout.num_buildings; ++b) {
    BuildingConfig bc;
    bc.id = static_cast<BuildingId>(b);
    bc.origin = {static_cast<double>(b % grid) * layout.campus_pitch_m,
                 static_cast<double>(b / grid) * layout.campus_pitch_m};
    bc.width_m = layout.building_width_m;
    bc.depth_m = layout.building_depth_m;
    buildings.push_back(bc);

    ControllerConfig cc;
    cc.id = static_cast<ControllerId>(b);
    cc.building = bc.id;
    cc.name = "ctrl-" + std::to_string(b);
    controllers.push_back(cc);
  }

  // APs on a near-square grid inside each building.
  const auto ap_cols = static_cast<std::size_t>(std::ceil(std::sqrt(
      static_cast<double>(layout.aps_per_building))));
  const auto ap_rows = (layout.aps_per_building + ap_cols - 1) / ap_cols;

  ApId next_ap = 0;
  for (std::size_t b = 0; b < layout.num_buildings; ++b) {
    const BuildingConfig& bc = buildings[b];
    for (std::size_t k = 0; k < layout.aps_per_building; ++k) {
      const std::size_t col = k % ap_cols;
      const std::size_t row = k / ap_cols;
      ApConfig ac;
      ac.id = next_ap++;
      ac.controller = static_cast<ControllerId>(b);
      ac.building = bc.id;
      ac.pos = {bc.origin.x + (static_cast<double>(col) + 0.5) * bc.width_m /
                                  static_cast<double>(ap_cols),
                bc.origin.y + (static_cast<double>(row) + 0.5) * bc.depth_m /
                                  static_cast<double>(ap_rows)};
      ac.capacity_mbps = layout.ap_capacity_mbps;
      aps.push_back(ac);
    }
  }
  return Network(std::move(buildings), std::move(controllers), std::move(aps));
}

}  // namespace s3::wlan
