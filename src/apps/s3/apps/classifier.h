// Port-heuristic application classification (§III-A).
//
// The paper obtains per-packet 5-tuples from the core-network routers
// and identifies concrete applications "by analyzing the port
// combination using certain heuristics" [Erman et al., WWW'09]. This
// module reproduces that pipeline: a flow record carries transport
// protocol and ports, and the classifier maps it to one of the six
// application realms. Flows whose ports match no rule fall back to
// web-browsing (the dominant residual class in campus traffic).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "s3/apps/app_category.h"

namespace s3::apps {

enum class Transport : std::uint8_t { kTcp = 0, kUdp = 1 };

/// One aggregated flow observed at the core routers.
struct FlowRecord {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Transport transport = Transport::kTcp;
  double bytes = 0.0;
};

/// A single classification rule: protocol + inclusive server-port range.
struct PortRule {
  Transport transport;
  std::uint16_t port_lo;
  std::uint16_t port_hi;
  AppCategory category;
};

/// Table-driven port classifier. The default rule set encodes the
/// well-known 2012-era campus-traffic heuristics (HTTP/S, SMTP/IMAP/POP,
/// BitTorrent/eDonkey, RTSP/RTMP/PPLive, XMPP/MSN/QQ, streaming-music
/// services). Rules are checked against both endpoints' ports; the
/// first match wins, earlier rules take precedence.
class PortClassifier {
 public:
  /// Classifier with the built-in 2012-era rule table.
  PortClassifier();

  /// Classifier with a custom rule table (first match wins).
  explicit PortClassifier(std::vector<PortRule> rules);

  /// Maps a flow to a realm; `fallback` is used when no rule matches.
  AppCategory classify(const FlowRecord& flow,
                       AppCategory fallback = AppCategory::kWeb) const noexcept;

  /// Like classify() but reports a non-match instead of falling back.
  std::optional<AppCategory> try_classify(const FlowRecord& flow) const noexcept;

  const std::vector<PortRule>& rules() const noexcept { return rules_; }

  /// The built-in rule table.
  static std::vector<PortRule> default_rules();

 private:
  std::vector<PortRule> rules_;
};

/// Accumulates a list of flows into a per-realm traffic mix.
AppMix accumulate_flows(const PortClassifier& classifier,
                        const std::vector<FlowRecord>& flows);

}  // namespace s3::apps
