// Synthetic core-router flows.
//
// The paper's profile pipeline ingests per-packet 5-tuples from the
// core routers and classifies them by port (§III-A). Our trace
// generator books traffic directly per realm; this module closes the
// loop for tests and ingest-path demos by synthesizing a plausible
// flow list that *realizes* a per-realm byte budget — drawing server
// ports from the classifier's own rule table so that classification
// round-trips the budget exactly.
#pragma once

#include <vector>

#include "s3/apps/classifier.h"
#include "s3/apps/profile.h"
#include "s3/util/ids.h"
#include "s3/util/rng.h"

namespace s3::apps {

struct FlowSynthesisConfig {
  /// Typical flow size; individual flows are lognormal around it.
  double mean_flow_bytes = 2.0e6;
  double sigma = 1.0;
  /// Client-side ephemeral port range.
  std::uint16_t ephemeral_lo = 49152;
  std::uint16_t ephemeral_hi = 65535;
};

/// Flows whose per-realm byte totals equal `budget` (each realm's last
/// flow is sized to the remainder). Ports are drawn from `classifier`'s
/// rules for the realm, restricted to rules that classify back to that
/// realm (i.e. not shadowed by an earlier rule).
std::vector<FlowRecord> synthesize_flows(const AppMix& budget,
                                         const PortClassifier& classifier,
                                         util::Rng& rng,
                                         const FlowSynthesisConfig& config = {});

/// Ingest path: classifies `flows` and books them on `store[user]`'s
/// day `d` — what a deployment would run against real router exports.
void ingest_flows(ProfileStore& store, UserId user, std::int64_t day,
                  const PortClassifier& classifier,
                  const std::vector<FlowRecord>& flows);

}  // namespace s3::apps
