// Per-user daily application profiles and history aggregation (§III-D).
//
// The paper characterizes a user u by T_x(u) = (a¹..a⁶): traffic per
// application realm on day x, and studies how much history — the
// cumulative vector Σ_{i=1..n} T_{x-i}(u) — is needed before the
// profile stabilizes (Fig. 6: ~15 days).
#pragma once

#include <cstdint>
#include <vector>

#include "s3/apps/app_category.h"
#include "s3/util/error.h"
#include "s3/util/ids.h"

namespace s3::apps {

/// Daily application-traffic matrix for one user: day index -> AppMix.
class UserProfileHistory {
 public:
  UserProfileHistory() = default;
  explicit UserProfileHistory(std::size_t num_days) : days_(num_days) {}

  std::size_t num_days() const noexcept { return days_.size(); }

  /// Adds `bytes` of realm `c` traffic on day `d`, growing as needed.
  void add(std::int64_t d, AppCategory c, double bytes);

  /// Adds a whole mix on day `d`.
  void add_mix(std::int64_t d, const AppMix& mix);

  /// T_d(u): the day-d vector (zero mix for days outside range).
  const AppMix& day(std::int64_t d) const noexcept;

  /// Cumulative vector Σ_{i=first..last} T_i(u), inclusive bounds
  /// clamped to the recorded range.
  AppMix cumulative(std::int64_t first_day, std::int64_t last_day) const;

  /// Total traffic over all recorded days.
  AppMix lifetime() const;

  /// True if the user generated no traffic at all.
  bool empty() const noexcept;

 private:
  std::vector<AppMix> days_;
  static const AppMix kZero;
};

/// Profile store for the whole user population.
class ProfileStore {
 public:
  ProfileStore(std::size_t num_users, std::size_t num_days)
      : profiles_(num_users, UserProfileHistory(num_days)) {}

  std::size_t num_users() const noexcept { return profiles_.size(); }

  UserProfileHistory& user(UserId u) {
    S3_REQUIRE(u < profiles_.size(), "ProfileStore: user out of range");
    return profiles_[u];
  }
  const UserProfileHistory& user(UserId u) const {
    S3_REQUIRE(u < profiles_.size(), "ProfileStore: user out of range");
    return profiles_[u];
  }

  /// Normalized lifetime profile of every user (rows aligned to UserId);
  /// the feature matrix consumed by the clustering stage.
  std::vector<AppMix> normalized_profiles() const;

  /// Normalized profile restricted to the training window
  /// [first_day, last_day] — what the controller would have observed.
  std::vector<AppMix> normalized_profiles(std::int64_t first_day,
                                          std::int64_t last_day) const;

 private:
  std::vector<UserProfileHistory> profiles_;
};

}  // namespace s3::apps
