#include "s3/apps/profile.h"

#include <algorithm>

namespace s3::apps {

const AppMix UserProfileHistory::kZero{};

void UserProfileHistory::add(std::int64_t d, AppCategory c, double bytes) {
  S3_REQUIRE(d >= 0, "UserProfileHistory: negative day");
  S3_REQUIRE(bytes >= 0.0, "UserProfileHistory: negative bytes");
  if (static_cast<std::size_t>(d) >= days_.size()) {
    days_.resize(static_cast<std::size_t>(d) + 1);
  }
  days_[static_cast<std::size_t>(d)][static_cast<std::size_t>(c)] += bytes;
}

void UserProfileHistory::add_mix(std::int64_t d, const AppMix& mix) {
  S3_REQUIRE(d >= 0, "UserProfileHistory: negative day");
  if (static_cast<std::size_t>(d) >= days_.size()) {
    days_.resize(static_cast<std::size_t>(d) + 1);
  }
  accumulate(days_[static_cast<std::size_t>(d)], mix);
}

const AppMix& UserProfileHistory::day(std::int64_t d) const noexcept {
  if (d < 0 || static_cast<std::size_t>(d) >= days_.size()) return kZero;
  return days_[static_cast<std::size_t>(d)];
}

AppMix UserProfileHistory::cumulative(std::int64_t first_day,
                                      std::int64_t last_day) const {
  AppMix out{};
  if (days_.empty()) return out;
  const std::int64_t lo = std::max<std::int64_t>(first_day, 0);
  const std::int64_t hi =
      std::min<std::int64_t>(last_day, static_cast<std::int64_t>(days_.size()) - 1);
  for (std::int64_t d = lo; d <= hi; ++d) {
    accumulate(out, days_[static_cast<std::size_t>(d)]);
  }
  return out;
}

AppMix UserProfileHistory::lifetime() const {
  if (days_.empty()) return AppMix{};
  return cumulative(0, static_cast<std::int64_t>(days_.size()) - 1);
}

bool UserProfileHistory::empty() const noexcept {
  for (const AppMix& m : days_) {
    if (total(m) > 0.0) return false;
  }
  return true;
}

std::vector<AppMix> ProfileStore::normalized_profiles() const {
  std::vector<AppMix> out;
  out.reserve(profiles_.size());
  for (const UserProfileHistory& h : profiles_) {
    out.push_back(normalized(h.lifetime()));
  }
  return out;
}

std::vector<AppMix> ProfileStore::normalized_profiles(
    std::int64_t first_day, std::int64_t last_day) const {
  std::vector<AppMix> out;
  out.reserve(profiles_.size());
  for (const UserProfileHistory& h : profiles_) {
    out.push_back(normalized(h.cumulative(first_day, last_day)));
  }
  return out;
}

}  // namespace s3::apps
