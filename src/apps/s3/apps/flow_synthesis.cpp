#include "s3/apps/flow_synthesis.h"

#include <algorithm>

namespace s3::apps {

std::vector<FlowRecord> synthesize_flows(const AppMix& budget,
                                         const PortClassifier& classifier,
                                         util::Rng& rng,
                                         const FlowSynthesisConfig& config) {
  S3_REQUIRE(config.mean_flow_bytes > 0.0, "synthesize_flows: bad mean size");
  S3_REQUIRE(config.sigma >= 0.0, "synthesize_flows: negative sigma");

  // Usable rules per realm: those not shadowed by an earlier rule of a
  // different category (first match wins in the classifier).
  std::array<std::vector<const PortRule*>, kNumCategories> usable{};
  for (const PortRule& rule : classifier.rules()) {
    FlowRecord probe;
    probe.transport = rule.transport;
    probe.src_port = 49999;
    probe.dst_port = rule.port_lo;
    if (classifier.classify(probe) == rule.category) {
      usable[static_cast<std::size_t>(rule.category)].push_back(&rule);
    }
  }

  std::vector<FlowRecord> flows;
  const double mu = std::log(config.mean_flow_bytes) -
                    0.5 * config.sigma * config.sigma;
  for (std::size_t c = 0; c < kNumCategories; ++c) {
    double remaining = budget[c];
    if (remaining <= 0.0) continue;
    S3_REQUIRE(!usable[c].empty(),
               "synthesize_flows: no usable rule for realm");
    while (remaining > 0.0) {
      const PortRule& rule = *usable[c][rng.index(usable[c].size())];
      FlowRecord f;
      f.transport = rule.transport;
      f.src_ip = static_cast<std::uint32_t>(rng.uniform_int(1, 0xFFFFFF));
      f.dst_ip = static_cast<std::uint32_t>(rng.uniform_int(1, 0xFFFFFF));
      f.src_port = static_cast<std::uint16_t>(rng.uniform_int(
          config.ephemeral_lo, config.ephemeral_hi));
      f.dst_port = static_cast<std::uint16_t>(
          rng.uniform_int(rule.port_lo, rule.port_hi));
      const double size = rng.lognormal(mu, config.sigma);
      f.bytes = std::min(size, remaining);
      remaining -= f.bytes;
      flows.push_back(f);
    }
  }
  rng.shuffle(flows);  // interleave realms like a real capture
  return flows;
}

void ingest_flows(ProfileStore& store, UserId user, std::int64_t day,
                  const PortClassifier& classifier,
                  const std::vector<FlowRecord>& flows) {
  UserProfileHistory& h = store.user(user);
  for (const FlowRecord& f : flows) {
    h.add(day, classifier.classify(f), f.bytes);
  }
}

}  // namespace s3::apps
