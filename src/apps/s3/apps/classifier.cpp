#include "s3/apps/classifier.h"

#include <utility>

namespace s3::apps {

namespace {

bool rule_matches(const PortRule& r, Transport t, std::uint16_t port) noexcept {
  return r.transport == t && r.port_lo <= port && port <= r.port_hi;
}

}  // namespace

PortClassifier::PortClassifier() : rules_(default_rules()) {}

PortClassifier::PortClassifier(std::vector<PortRule> rules)
    : rules_(std::move(rules)) {}

std::vector<PortRule> PortClassifier::default_rules() {
  using enum AppCategory;
  constexpr Transport tcp = Transport::kTcp;
  constexpr Transport udp = Transport::kUdp;
  // Earlier rules win; specific services precede the broad web rules.
  return {
      // E-mail: SMTP, POP3, IMAP and their TLS variants.
      {tcp, 25, 25, kEmail},
      {tcp, 110, 110, kEmail},
      {tcp, 143, 143, kEmail},
      {tcp, 465, 465, kEmail},
      {tcp, 587, 587, kEmail},
      {tcp, 993, 993, kEmail},
      {tcp, 995, 995, kEmail},
      // IM: XMPP, MSN Messenger, IRC, QQ (UDP 8000), SIP signalling.
      {tcp, 5222, 5223, kIm},
      {tcp, 1863, 1863, kIm},
      {tcp, 6665, 6669, kIm},
      {udp, 8000, 8001, kIm},
      {udp, 5060, 5061, kIm},
      {tcp, 5060, 5061, kIm},
      // P2P: BitTorrent swarm + tracker ports, eDonkey, Gnutella, DHT.
      {tcp, 6881, 6999, kP2p},
      {udp, 6881, 6999, kP2p},
      {tcp, 4662, 4662, kP2p},
      {udp, 4672, 4672, kP2p},
      {tcp, 6346, 6347, kP2p},
      {udp, 6346, 6347, kP2p},
      // Video: RTSP, RTMP, MMS, PPLive/PPStream-era streaming ports.
      {tcp, 554, 554, kVideo},
      {udp, 554, 554, kVideo},
      {tcp, 1935, 1935, kVideo},
      {tcp, 1755, 1755, kVideo},
      {udp, 3423, 3424, kVideo},
      {tcp, 8902, 8902, kVideo},
      // Music: streaming-audio daemons (Icecast/Shoutcast, DAAP, spotify-era).
      {tcp, 8443, 8443, kMusic},
      {tcp, 3689, 3689, kMusic},
      {tcp, 8005, 8005, kMusic},
      {tcp, 6714, 6714, kMusic},
      // Web: HTTP, HTTPS, proxies, QUIC. Broad rules last.
      {tcp, 80, 80, kWeb},
      {tcp, 443, 443, kWeb},
      {udp, 443, 443, kWeb},
      {tcp, 8080, 8080, kWeb},
      {tcp, 3128, 3128, kWeb},
  };
}

std::optional<AppCategory> PortClassifier::try_classify(
    const FlowRecord& flow) const noexcept {
  for (const PortRule& r : rules_) {
    if (rule_matches(r, flow.transport, flow.dst_port) ||
        rule_matches(r, flow.transport, flow.src_port)) {
      return r.category;
    }
  }
  return std::nullopt;
}

AppCategory PortClassifier::classify(const FlowRecord& flow,
                                     AppCategory fallback) const noexcept {
  return try_classify(flow).value_or(fallback);
}

AppMix accumulate_flows(const PortClassifier& classifier,
                        const std::vector<FlowRecord>& flows) {
  AppMix mix{};
  for (const FlowRecord& f : flows) {
    mix[static_cast<std::size_t>(classifier.classify(f))] += f.bytes;
  }
  return mix;
}

}  // namespace s3::apps
