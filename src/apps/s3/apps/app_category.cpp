#include "s3/apps/app_category.h"

#include <cmath>

namespace s3::apps {

double total(const AppMix& m) noexcept {
  double s = 0.0;
  for (double v : m) s += v;
  return s;
}

AppMix normalized(const AppMix& m) noexcept {
  const double t = total(m);
  AppMix out{};
  if (t > 0.0) {
    for (std::size_t i = 0; i < kNumCategories; ++i) out[i] = m[i] / t;
  }
  return out;
}

void accumulate(AppMix& into, const AppMix& add) noexcept {
  for (std::size_t i = 0; i < kNumCategories; ++i) into[i] += add[i];
}

double l2_distance(const AppMix& a, const AppMix& b) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

double cosine_similarity(const AppMix& a, const AppMix& b) noexcept {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace s3::apps
