// The six application realms of §III-A.
//
// The paper classifies the top-30 applications (by traffic volume) into
// IM, P2P, music, e-mail, video, and web-browsing; user application
// profiles are 6-dimensional traffic-volume vectors over these realms.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string_view>

namespace s3::apps {

enum class AppCategory : std::uint8_t {
  kIm = 0,
  kP2p = 1,
  kMusic = 2,
  kEmail = 3,
  kVideo = 4,
  kWeb = 5,
};

inline constexpr std::size_t kNumCategories = 6;

inline constexpr std::array<AppCategory, kNumCategories> kAllCategories = {
    AppCategory::kIm,    AppCategory::kP2p,   AppCategory::kMusic,
    AppCategory::kEmail, AppCategory::kVideo, AppCategory::kWeb,
};

constexpr std::string_view to_string(AppCategory c) noexcept {
  switch (c) {
    case AppCategory::kIm:
      return "IM";
    case AppCategory::kP2p:
      return "P2P";
    case AppCategory::kMusic:
      return "music";
    case AppCategory::kEmail:
      return "email";
    case AppCategory::kVideo:
      return "video";
    case AppCategory::kWeb:
      return "browsing";
  }
  return "unknown";
}

/// Traffic volume (bytes) per application realm — the paper's
/// application-profile vector T_x(u).
using AppMix = std::array<double, kNumCategories>;

constexpr AppMix zero_mix() noexcept { return AppMix{}; }

/// Sum of all realm volumes.
double total(const AppMix& m) noexcept;

/// Normalizes to a distribution over realms; an all-zero mix stays zero.
AppMix normalized(const AppMix& m) noexcept;

/// Element-wise accumulate.
void accumulate(AppMix& into, const AppMix& add) noexcept;

/// Euclidean distance between two (typically normalized) mixes.
double l2_distance(const AppMix& a, const AppMix& b) noexcept;

/// Cosine similarity of two mixes; 0 if either is all-zero.
double cosine_similarity(const AppMix& a, const AppMix& b) noexcept;

}  // namespace s3::apps
