#include "s3/core/online_s3.h"

#include <algorithm>

namespace s3::core {

namespace {
/// Feed retention: enough for any realistic consumer cadence (a
/// selector syncs every batch), small enough that an abandoned feed
/// never grows without bound. Overflow drops the older half, so a
/// consumer that skipped more than this many records reseeds.
constexpr std::size_t kFeedCapacity = 1 << 16;
}  // namespace

OnlineSocialModel::OnlineSocialModel(const social::SocialIndexModel* base,
                                     OnlineS3Config config)
    : base_(base), config_(config) {
  S3_REQUIRE(base_ != nullptr, "OnlineSocialModel: null base model");
  S3_REQUIRE(config_.co_leave_window.seconds() > 0 &&
                 config_.min_encounter_overlap.seconds() > 0,
             "OnlineSocialModel: windows must be positive");
}

social::PairStore::Stats& OnlineSocialModel::live_stats(UserId u, UserId v) {
  const UserPair key(u, v);
  if (social::PairStore::Stats* hit = live_.find(key)) return *hit;
  // Copy-on-first-touch: seed with the trained counts so the live
  // ratio continues the history instead of restarting from scratch.
  social::PairStore::Stats seed;
  if (const social::PairStore::Stats* trained = base_->pair_stats().find(key)) {
    seed = *trained;
  }
  social::PairStore::Stats& slot = live_.upsert(key);
  slot = seed;
  return slot;
}

void OnlineSocialModel::push_delta(UserId u, UserId v) {
  if (feed_.size() >= kFeedCapacity) {
    const std::size_t drop = feed_.size() / 2;
    feed_.erase(feed_.begin(),
                feed_.begin() + static_cast<std::ptrdiff_t>(drop));
    feed_base_ += drop;
  }
  // θ after the bump; the epoch stamp is the value read_epoch() will
  // report once the enclosing event handler finishes (it increments
  // epoch_ on exit).
  feed_.push_back(social::ThetaDelta{UserPair(u, v), theta(u, v), epoch_ + 1});
}

social::ThetaDeltaPoll OnlineSocialModel::poll_theta_deltas(
    std::uint64_t cursor, std::vector<social::ThetaDelta>& out) const {
  const std::uint64_t end = feed_base_ + feed_.size();
  if (cursor < feed_base_ || cursor > end) {
    return social::ThetaDeltaPoll{end, false};
  }
  out.insert(out.end(),
             feed_.begin() + static_cast<std::ptrdiff_t>(cursor - feed_base_),
             feed_.end());
  return social::ThetaDeltaPoll{end, true};
}

double OnlineSocialModel::theta(UserId u, UserId v) const {
  if (u == v) return 0.0;
  const social::PairStore::Stats* live = live_.find(UserPair(u, v));
  if (live == nullptr) return base_->theta(u, v);
  const double type_term =
      base_->type_matrix().num_types() > 0
          ? base_->type_matrix().at(base_->typing().type(u),
                                    base_->typing().type(v))
          : 0.0;
  return live->co_leave_probability() + base_->alpha() * type_term;
}

void OnlineSocialModel::theta_row(UserId u, std::span<const UserId> vs,
                                  std::span<double> out) const {
  // One flat pass over the frozen model's row, then overwrite the few
  // entries whose pair has live history. Expression shapes match the
  // scalar theta() exactly, so batched and scalar agree bit for bit.
  base_->theta_row(u, vs, out);
  if (live_.empty()) return;
  const bool typed = base_->type_matrix().num_types() > 0;
  const std::size_t type_u = typed ? base_->typing().type(u) : 0;
  for (std::size_t i = 0; i < vs.size(); ++i) {
    const UserId v = vs[i];
    if (v == u) continue;
    if (const social::PairStore::Stats* live = live_.find(UserPair(u, v))) {
      const double type_term =
          typed ? base_->type_matrix().at(type_u, base_->typing().type(v))
                : 0.0;
      out[i] = live->co_leave_probability() + base_->alpha() * type_term;
    }
  }
}

void OnlineSocialModel::on_associate(std::size_t session_index, UserId user,
                                     ApId ap, util::SimTime when) {
  present_[ap].push_back({session_index, user, when});
  ++epoch_;
}

void OnlineSocialModel::on_disconnect(std::size_t session_index,
                                      UserId /*user*/, ApId ap,
                                      util::SimTime when) {
  auto& present = present_[ap];
  const auto self = std::find_if(
      present.begin(), present.end(),
      [&](const Presence& p) { return p.session_index == session_index; });
  if (self == present.end()) return;  // session predates tracking
  const Presence leaving = *self;
  present.erase(self);

  auto& recent = recent_departures_[ap];
  // Prune departures older than the co-leave window.
  recent.erase(std::remove_if(recent.begin(), recent.end(),
                              [&](const Departure& d) {
                                return when - d.when > config_.co_leave_window;
                              }),
               recent.end());

  // Encounters: overlap with everyone still present (their stay covers
  // ours since `leaving.since`), and with recent leavers whose overlap
  // already counted when *they* left — so count only the still-present
  // side here to avoid double counting.
  for (const Presence& other : present) {
    if (other.user == leaving.user) continue;
    const util::SimTime overlap =
        when - std::max(other.since, leaving.since);
    if (overlap >= config_.min_encounter_overlap) {
      bump_pair(leaving.user, other.user,
                [](social::PairStore::Stats& s) { ++s.encounters; });
    }
  }
  // Co-leavings: recent departures within the window whose shared stay
  // with us was encounter-grade (so that P(L|E) stays <= 1: the
  // matching encounter was counted when the other side left).
  for (const Departure& d : recent) {
    if (d.user == leaving.user) continue;
    const util::SimTime overlap = d.when - std::max(d.since, leaving.since);
    if (overlap >= config_.min_encounter_overlap) {
      bump_pair(leaving.user, d.user,
                [](social::PairStore::Stats& s) { ++s.co_leaves; });
    }
  }
  recent.push_back({leaving.user, leaving.since, when});
  ++epoch_;
}

social::SocialIndexModel OnlineSocialModel::checkpoint() const {
  social::PairStore merged = base_->pair_stats();
  live_.for_each([&](UserPair pair, const social::PairStore::Stats& stats) {
    merged.assign(pair, stats);  // live entries were seeded from the base
  });
  return social::SocialIndexModel::from_parts(
      base_->config(), std::move(merged), base_->typing(),
      base_->type_matrix());
}

std::uint64_t OnlineSocialModel::state_digest() const {
  std::uint64_t h = 0x6f6e6c696e65ULL;  // "online"
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  };
  for (const social::PairStore::Entry& e : live_.sorted_entries()) {
    mix((static_cast<std::uint64_t>(e.pair.a) << 32) | e.pair.b);
    mix(e.stats.encounters);
    mix(e.stats.co_leaves);
    mix(e.stats.co_comings);
  }
  // The unordered maps hash in canonical (ap, content) order so table
  // capacity and insertion order cannot leak into the digest.
  std::vector<ApId> aps;
  aps.reserve(present_.size());
  // s3lint: allow(det-unordered-iter): keys are collected then sorted.
  for (const auto& [ap, stations] : present_) {
    if (!stations.empty()) aps.push_back(ap);
  }
  std::sort(aps.begin(), aps.end());
  for (const ApId ap : aps) {
    std::vector<Presence> stations = present_.at(ap);
    std::sort(stations.begin(), stations.end(),
              [](const Presence& a, const Presence& b) {
                return a.session_index < b.session_index;
              });
    mix(ap);
    for (const Presence& p : stations) {
      mix(p.session_index);
      mix(p.user);
      mix(static_cast<std::uint64_t>(p.since.seconds()));
    }
  }
  aps.clear();
  // s3lint: allow(det-unordered-iter): keys are collected then sorted.
  for (const auto& [ap, departures] : recent_departures_) {
    if (!departures.empty()) aps.push_back(ap);
  }
  std::sort(aps.begin(), aps.end());
  for (const ApId ap : aps) {
    mix(ap);
    // The departure ring is append-ordered by `when` already (pruning
    // pops the front), so its stored order is canonical.
    for (const Departure& d : recent_departures_.at(ap)) {
      mix(d.user);
      mix(static_cast<std::uint64_t>(d.since.seconds()));
      mix(static_cast<std::uint64_t>(d.when.seconds()));
    }
  }
  return h;
}

// ---------------------------------------------------------------------

OnlineS3Selector::OnlineS3Selector(const wlan::Network* net,
                                   const social::SocialIndexModel* base,
                                   OnlineS3Config config)
    : online_(base, config) {
  inner_ = std::make_unique<S3Selector>(net, &online_, config.s3);
}

ApId OnlineS3Selector::select_one(const sim::Arrival& arrival,
                                  const sim::ApLoadTracker& loads) {
  return inner_->select_one(arrival, loads);
}

sim::BatchResult OnlineS3Selector::place_batch(
    const sim::BatchRequest& request, const sim::ApLoadTracker& loads) {
  return inner_->place_batch(request, loads);
}

void OnlineS3Selector::on_associate(const sim::Arrival& arrival, ApId ap) {
  online_.on_associate(arrival.session_index, arrival.user, ap,
                       arrival.connect);
}

void OnlineS3Selector::on_disconnect(std::size_t session_index, UserId user,
                                     ApId ap, util::SimTime when) {
  online_.on_disconnect(session_index, user, ap, when);
}

std::uint64_t OnlineS3Selector::state_digest() const {
  std::uint64_t h = online_.state_digest();
  h ^= inner_->state_digest() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
}

}  // namespace s3::core
