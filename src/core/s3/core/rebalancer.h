// The "online adjustment" class of load balancers (§I, §II [12]):
// periodically migrate already-associated stations from heavy APs to
// light ones. These schemes bound the achievable balance from above —
// and quantify the user-experience price S3 refuses to pay, because
// every migration drops and re-establishes a user's connection.
//
// Migration cannot be expressed as a per-session AP in a trace::Trace
// (a session may hop), so this runs its own event loop and reports
// per-slot per-AP served load directly, plus the disruption ledger.
#pragma once

#include <cstdint>
#include <vector>

#include "s3/core/baselines.h"
#include "s3/fault/fault_injector.h"
#include "s3/sim/replay.h"
#include "s3/trace/trace.h"
#include "s3/util/sim_time.h"
#include "s3/wlan/network.h"
#include "s3/wlan/radio.h"

namespace s3::core {

struct RebalancerConfig {
  /// Seconds between re-balancing sweeps of every controller.
  std::int64_t sweep_period_s = 300;
  /// A station is migrated only if the move reduces the donor's load
  /// below the receiver's resulting load by at most this hysteresis
  /// (prevents ping-pong migrations of the same station).
  double hysteresis_mbps = 0.5;
  /// Cap on migrations per controller per sweep.
  std::size_t max_migrations_per_sweep = 8;
  /// Arrival policy between sweeps.
  LoadMetric arrival_metric = LoadMetric::kStations;
  wlan::RadioModel radio{};
  /// Load-averaging slot for the reported series.
  std::int64_t slot_s = 600;
  /// Optional fault schedule: AP outages evict stations mid-domain onto
  /// surviving APs (bandwidth-aware, least-loaded), arrivals never land
  /// on a down AP, and sweeps ignore down APs. Must outlive the call.
  const fault::FaultInjector* injector = nullptr;
};

struct RebalanceResult {
  /// Mean served load (Mbit/s) per [controller][slot * domain + k],
  /// k indexing net.aps_of_controller(controller).
  std::vector<std::vector<double>> slot_load;
  std::size_t num_slots = 0;
  util::SimTime begin;
  std::int64_t slot_s = 0;

  /// Total migrations performed.
  std::size_t migrations = 0;
  /// Migrations per user (a user's connection drops once per entry).
  std::vector<std::uint32_t> disruptions_per_user;
  /// Fraction of sessions disrupted at least once.
  double disrupted_session_fraction = 0.0;

  // Fault accounting (zero without an injector).
  std::size_t fault_evictions = 0;   ///< stations kicked by an AP outage
  std::size_t dropped_sessions = 0;  ///< no surviving AP was audible

  std::span<const double> loads(ControllerId c, std::size_t slot,
                                std::size_t domain_size) const {
    return std::span<const double>(slot_load[c])
        .subspan(slot * domain_size, domain_size);
  }
};

/// Replays `workload` with LLF arrivals plus periodic migration sweeps
/// over [begin, end) (whole workload when begin == end).
RebalanceResult simulate_with_migration(const wlan::Network& net,
                                        const trace::Trace& workload,
                                        const RebalancerConfig& config = {});

}  // namespace s3::core
