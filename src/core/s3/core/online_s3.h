// Online S3 — the paper's future-work direction (§VI): instead of a
// frozen model trained once on historical logs, the controller keeps
// learning while it operates. Every association/disassociation it
// processes updates the pairwise encounter/co-leaving statistics, so
// social relationships formed *after* training (a new semester's
// classes) start influencing placement within days.
//
// The typing stage (k-means + Table-I matrix) stays fixed — re-running
// clustering online is cheap but would make θ non-monotonic under the
// reader's feet; the pair-history term P(L|E) is where freshness pays.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "s3/core/s3_selector.h"

namespace s3::core {

struct OnlineS3Config {
  S3Config s3{};
  /// Co-leaving window for online event detection (paper optimum: 5 min).
  util::SimTime co_leave_window = util::SimTime::from_minutes(5);
  /// Minimum same-AP overlap before a pair counts as encountered.
  util::SimTime min_encounter_overlap = util::SimTime::from_minutes(10);
};

/// Wraps a trained SocialIndexModel with live-updated pair statistics.
/// θ(u,v) = P_live(L|E) + α·T(type_u, type_v), where P_live merges the
/// trained counts with everything observed since.
class OnlineSocialModel : public social::ThetaProvider {
 public:
  /// `base` must outlive this object; its pair stats seed the live
  /// counters lazily (copy-on-first-touch).
  OnlineSocialModel(const social::SocialIndexModel* base,
                    OnlineS3Config config);

  double theta(UserId u, UserId v) const override;

  /// Batched kernel: one flat pass over the base model's row, then the
  /// live deltas patched on top. Bit-identical to the scalar path.
  void theta_row(UserId u, std::span<const UserId> vs,
                 std::span<double> out) const override;

  std::size_t num_users() const override { return base_->num_users(); }

  /// Advances whenever an event mutates the live statistics or the
  /// presence state behind them. Single-owner provider: reads never
  /// race mutations, so the stamp is exact, not momentary.
  std::uint64_t read_epoch() const noexcept override { return epoch_; }

  /// Structured change feed per the ThetaDelta contract (graph.h): one
  /// record per live pair-counter bump, carrying θ after the bump.
  /// Bounded — consumers that fall behind the log's retention get an
  /// incomplete poll and must reseed.
  bool emits_theta_deltas() const noexcept override { return true; }
  social::ThetaDeltaPoll poll_theta_deltas(
      std::uint64_t cursor,
      std::vector<social::ThetaDelta>& out) const override;

  /// Feed an association: the station joined `ap` at `when`.
  void on_associate(std::size_t session_index, UserId user, ApId ap,
                    util::SimTime when);

  /// Feed a disassociation; detects encounters (overlap with co-present
  /// stations) and co-leavings (departures within the window).
  void on_disconnect(std::size_t session_index, UserId user, ApId ap,
                     util::SimTime when);

  /// Pairs whose statistics changed since training.
  std::size_t updated_pairs() const noexcept { return live_.size(); }

  /// Canonical-order fold of the live pair counters, presence maps, and
  /// recent-departure ring — the state a replicated controller must
  /// carry across failover bit-for-bit. Insertion-order independent
  /// (entries are sorted before hashing).
  std::uint64_t state_digest() const;

  /// Checkpoint: a frozen SocialIndexModel combining the base model's
  /// typing/matrix with the live pair statistics (trained counts merged
  /// with everything observed since). Persist it with
  /// social::write_model_file and reload on the next controller start.
  social::SocialIndexModel checkpoint() const;

 private:
  struct Presence {
    std::size_t session_index;
    UserId user;
    util::SimTime since;
  };
  struct Departure {
    UserId user;
    util::SimTime since;  ///< association start (for the overlap check)
    util::SimTime when;
  };

  social::PairStore::Stats& live_stats(UserId u, UserId v);
  /// Bumps one live pair counter through `fn` and records the
  /// resulting θ in the change feed.
  template <typename Fn>
  void bump_pair(UserId u, UserId v, Fn&& fn) {
    fn(live_stats(u, v));
    push_delta(u, v);
  }
  void push_delta(UserId u, UserId v);

  const social::SocialIndexModel* base_;
  OnlineS3Config config_;
  /// Live pair counters, same flat layout as the trained store so the
  /// hot θ patch loop probes contiguous memory.
  social::PairStore live_;
  /// Stations currently associated, per AP.
  std::unordered_map<ApId, std::vector<Presence>> present_;
  /// Recent departures per AP (pruned past the co-leave window).
  std::unordered_map<ApId, std::vector<Departure>> recent_departures_;
  std::uint64_t epoch_ = 0;  ///< see read_epoch()
  /// Bounded ThetaDelta log; feed_base_ is the cursor of feed_[0]
  /// (records before it were truncated away).
  std::vector<social::ThetaDelta> feed_;
  std::uint64_t feed_base_ = 0;
};

/// S3 with continuous learning: identical placement machinery, but the
/// social index it consults is updated by every event the replay engine
/// delivers.
class OnlineS3Selector final : public sim::ApSelector {
 public:
  OnlineS3Selector(const wlan::Network* net,
                   const social::SocialIndexModel* base,
                   OnlineS3Config config = {});

  std::string_view name() const override { return "S3-online"; }

  ApId select_one(const sim::Arrival& arrival,
                  const sim::ApLoadTracker& loads) override;

  /// Forwards to the inner S3 machinery, fault directives included (the
  /// online wrapper degrades exactly like frozen S3: model outage ->
  /// embedded LLF).
  sim::BatchResult place_batch(const sim::BatchRequest& request,
                               const sim::ApLoadTracker& loads) override;

  void on_associate(const sim::Arrival& arrival, ApId ap) override;
  void on_disconnect(std::size_t session_index, UserId user, ApId ap,
                     util::SimTime when) override;

  bool uses_social_model() const override { return true; }

  /// Live social counters plus the inner S3 machinery's digest.
  std::uint64_t state_digest() const override;

  /// Deep copy for replication checkpoints: the live social model is
  /// copied mid-stream and the inner S3 machinery is rebound to consult
  /// the copy, so the clone keeps learning independently while its
  /// future placements match the original's bit for bit.
  std::unique_ptr<sim::ApSelector> clone() const override {
    return std::unique_ptr<sim::ApSelector>(new OnlineS3Selector(*this));
  }

  const OnlineSocialModel& model() const noexcept { return online_; }

 private:
  /// Copy used by clone(): `inner_` must point at the copy's own live
  /// model, never the source's.
  OnlineS3Selector(const OnlineS3Selector& other)
      : online_(other.online_),
        inner_(std::make_unique<S3Selector>(*other.inner_, &online_)) {}

  OnlineSocialModel online_;
  std::unique_ptr<S3Selector> inner_;
};

}  // namespace s3::core
