// End-to-end evaluation pipeline (§V-A):
//
//   1. generate (or load) a workload;
//   2. replay the *training* days under LLF — that is the operator's
//      collected trace, since LLF is what the deployed controllers run;
//   3. train the social-index model on it;
//   4. replay the *test* days once per policy and score the balance
//      index over time and controllers.
//
// Figs. 10–12 are parameter sweeps / comparisons over this pipeline.
#pragma once

#include <string>
#include <vector>

#include "s3/analysis/balance.h"
#include "s3/core/s3_selector.h"
#include "s3/core/selector_factory.h"
#include "s3/runtime/replay_driver.h"
#include "s3/trace/generator.h"
#include "s3/util/stats.h"

namespace s3::core {

struct EvaluationConfig {
  /// Day range [0, train_days) trains; [train_days, train_days +
  /// test_days) evaluates. The paper trains on ~3 weeks (Jul 4–24) and
  /// tests on 3 days (Jul 25–27).
  int train_days = 21;
  int test_days = 3;
  /// Load metric of the *deployed* LLF (the collected-trace policy and
  /// the comparison baseline). Enterprise controllers of the paper's
  /// era balanced station counts; S3 by contrast estimates per-user
  /// demand w(u) from history (§IV-B) and is configured via `s3`.
  LoadMetric baseline_metric = LoadMetric::kStations;
  sim::ReplayConfig replay{};
  /// Worker threads for the sharded replay driver; 0 = all cores.
  /// Scores are identical for every value — controller domains are
  /// independent, so sharding only changes wall clock.
  unsigned threads = 0;
  social::SocialModelConfig social{};
  S3Config s3{};
  /// Balance-index sampling slot.
  std::int64_t eval_slot_s = 600;
  /// Skip slots whose whole-domain load is below this (idle night
  /// slots would otherwise dominate the mean with trivial values).
  double min_slot_load_mbps = 5.0;
  /// Scored hours of day [first, last): Fig. 12 evaluates "time in
  /// daytime"; Fig. 4's workday window is 8:00–24:00.
  double score_hours_begin = 8.0;
  double score_hours_end = 24.0;
  /// Leave-peak hours (start, end) for the peak-gain breakdown;
  /// paper: 12:00–13:00, 16:00–17:50, 21:00–22:00.
  std::vector<std::pair<double, double>> leave_peak_hours = {
      {12.0, 13.0}, {16.0, 17.83}, {21.0, 22.0}};
};

struct PolicyScore {
  std::string policy;
  /// Mean normalized balance index per controller over test slots.
  std::vector<double> per_controller_mean;
  /// 95% CI half-width per controller.
  std::vector<double> per_controller_ci95;
  double mean = 0.0;        ///< over all controllers and slots
  double ci95 = 0.0;        ///< over all slot samples
  /// Mean of the per-controller CI half-widths — the "error bar" of
  /// Fig. 12's per-site bars.
  double per_site_ci95 = 0.0;
  double leave_peak_mean = 0.0;
  std::size_t slots_scored = 0;
  sim::ReplayStats replay_stats{};
};

/// Trains a social model from a workload's training window: replays the
/// window under LLF and learns from the assigned result.
social::SocialIndexModel train_from_workload(const wlan::Network& net,
                                             const trace::Trace& workload,
                                             const EvaluationConfig& config);

/// Replays the test window under per-domain instances from `factory`
/// (sharded across config.threads workers) and scores it.
PolicyScore score_policy(const wlan::Network& net,
                         const trace::Trace& workload,
                         const sim::SelectorFactory& factory,
                         const EvaluationConfig& config);

/// Replays the test window under the single shared `policy` instance
/// (sequential, global event order — required for policies whose
/// state must span controller domains) and scores it.
PolicyScore score_policy(const wlan::Network& net,
                         const trace::Trace& workload,
                         sim::ApSelector& policy,
                         const EvaluationConfig& config);

struct ComparisonResult {
  PolicyScore llf;
  PolicyScore s3;
  /// (mean_S3 − mean_LLF) / mean_LLF — the paper's headline 41.2 %.
  double balance_gain = 0.0;
  /// Same, restricted to leave-peak hours — the paper's 52.1 %.
  double leave_peak_gain = 0.0;
  /// 1 − ci_S3 / ci_LLF — the paper's 72.1 % error-bar reduction.
  double errorbar_reduction = 0.0;
};

/// The full S3-vs-LLF comparison on one workload.
ComparisonResult compare_s3_vs_llf(const wlan::Network& net,
                                   const trace::Trace& workload,
                                   const EvaluationConfig& config);

}  // namespace s3::core
