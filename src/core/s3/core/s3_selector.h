// S3 — the Social-aware AP Selection Scheme (§IV, Algorithm 1).
//
// Given a batch of pending association requests, S3:
//   1. builds a social graph over the batch (edges where θ(u,v)
//      exceeds the threshold, 0.3 in the paper);
//   2. repeatedly extracts a maximum clique (Östergård's algorithm;
//      ties between maximum cliques broken by larger edge-weight sum);
//   3. for each clique, enumerates distributions of its members over
//      their candidate APs, sorts them by total added social cost
//      Σ C(AP_i) with C(AP) = Σ_{w ∈ S(AP)} θ(u, w), keeps the
//      cheapest top 30 %, and among those picks the distribution with
//      the best (largest) normalized balance index;
//   4. places social singletons — and resolves pure ties — with LLF,
//      exactly as the pseudocode's fallback prescribes.
//
// Placements violating the per-AP bandwidth constraint Σ w(u) ≤ W(i)
// cost infinity; if every candidate violates it, S3 degrades to LLF
// (the association cannot be refused).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "s3/core/baselines.h"
#include "s3/sim/selector.h"
#include "s3/social/clique.h"
#include "s3/social/clique_maintainer.h"
#include "s3/social/social_index.h"
#include "s3/wlan/network.h"

namespace s3::core {

struct S3Config {
  /// Social-graph edge threshold on θ (paper: 0.3).
  double theta_threshold = 0.3;
  /// Fraction of cheapest distributions kept for the balance
  /// tie-break (paper: top 30 %).
  double top_fraction = 0.3;
  /// Exhaustive-enumeration cap on |candidates|^|clique|; above it a
  /// beam search over members is used instead.
  std::size_t enumeration_limit = 20000;
  std::size_t beam_width = 256;
  social::CliqueConfig clique{};
  /// Enforce Σ w(u) ≤ W(i) (Definition 1's constraint).
  bool respect_bandwidth = true;
  /// Whether C(AP) sums θ over *all* associated users (the literal
  /// §IV-B formula — the type prior then acts as a type-diversity
  /// force) or only over close relations (θ > theta_threshold, the
  /// same rule as the social graph's edges). With weak ties counted,
  /// C never ties, so the LLF fallback only fires on empty APs.
  bool count_weak_ties_in_cost = false;
  /// Load metric of the embedded LLF fallback — the *deployed*
  /// controller policy per the pseudocode ("if there are multiple
  /// candidate APs to choose, we simply apply LLF"), i.e. station
  /// counts. S3's own demand estimates w(u) enter through the
  /// bandwidth constraint and the balance-index tie-break instead.
  LoadMetric llf_metric = LoadMetric::kStations;
  /// Build batch graphs from a social::CliqueMaintainer kept in sync
  /// through the provider's ThetaDelta feed, instead of O(batch²)
  /// theta_row probes per batch. Placements are bit-identical either
  /// way (the maintainer mirrors θ exactly, under the same strict
  /// edge rule); this only changes how edges are *found*. Off by
  /// default: replay workloads with mostly-immutable models pay the
  /// one-time seeding without reaping churn savings.
  bool incremental_cliques = false;
};

/// Running counters a deployment would export (and tests assert on):
/// how often each path of Algorithm 1 actually fires.
struct S3Stats {
  std::size_t batches = 0;
  std::size_t singles = 0;            ///< size-1 cliques (LLF-ish path)
  std::size_t cliques = 0;            ///< multi-member cliques placed
  std::size_t clique_members = 0;     ///< users placed via cliques
  std::size_t largest_clique = 0;
  std::size_t exact_enumerations = 0;
  std::size_t beam_searches = 0;
  /// Candidates were present but every one violated the bandwidth
  /// constraint: degraded to LLF over all candidates.
  std::size_t bandwidth_fallbacks = 0;
  /// The arrival carried no candidates at all — a caller contract
  /// breach, counted before select_one throws so deployments can see
  /// how often the radio layer handed S3 an impossible request.
  std::size_t empty_candidate_fallbacks = 0;
  /// Batches served by the embedded LLF because of a fault directive
  /// (model outage or engine-forced fallback; see sim::FaultControls).
  std::size_t degraded_batches = 0;
  /// Batches whose clique cover hit the node budget (non-exact result).
  std::size_t inexact_covers = 0;
  /// Batches whose social graph came from the incremental maintainer
  /// (config.incremental_cliques) instead of per-batch θ probes.
  std::size_t incremental_graph_batches = 0;
};

class S3Selector final : public sim::ApSelector {
 public:
  /// `net` and `model` must outlive the selector. The network is used
  /// to evaluate the balance index over whole controller domains when
  /// tie-breaking clique distributions. `model` is any ThetaProvider —
  /// a frozen trained SocialIndexModel or a live OnlineSocialModel.
  S3Selector(const wlan::Network* net, const social::ThetaProvider* model,
             S3Config config = {});

  /// Copy: everything that affects placements is duplicated; the
  /// maintainer (a pure cache over the θ provider) is dropped and
  /// re-seeded lazily on the copy's first incremental batch.
  S3Selector(const S3Selector& other);

  /// Copy with the θ provider rebound: identical internal state (stats,
  /// fidelity flags, scratch), but future θ queries go to `model`. The
  /// online wrapper clones its live social model and needs the inner
  /// machinery to consult the clone, not the original.
  S3Selector(const S3Selector& other, const social::ThetaProvider* model)
      : S3Selector(other) {
    model_ = model;
  }

  std::string_view name() const override { return "S3"; }

  /// Single-arrival path: AP minimizing the social-cost increment
  /// C(AP), bandwidth-feasible, LLF on ties.
  ApId select_one(const sim::Arrival& arrival,
                  const sim::ApLoadTracker& loads) override;

  /// Algorithm 1 over the whole batch; under a fault directive
  /// (request.faults: model outage / forced fallback) the batch is
  /// served by the embedded LLF instead and the result reports reduced
  /// fidelity.
  sim::BatchResult place_batch(const sim::BatchRequest& request,
                               const sim::ApLoadTracker& loads) override;

  bool uses_social_model() const override { return true; }

  /// Folds the running S3Stats and fidelity flag — the only state that
  /// outlives a batch (the θ model is external and the scratch vectors
  /// are transient).
  std::uint64_t state_digest() const override;

  const S3Config& config() const noexcept { return config_; }
  const S3Stats& stats() const noexcept { return stats_; }

  /// Member-wise deep copy; the external θ model is shared (the
  /// selector never mutates it, so one frozen model can back any
  /// number of replicas).
  std::unique_ptr<sim::ApSelector> clone() const override {
    return std::unique_ptr<sim::ApSelector>(new S3Selector(*this));
  }

 private:
  /// Places one multi-member clique (steps 5–7 of Algorithm 1) against
  /// the already-committed scratch state; `commit` receives
  /// (batch index, chosen AP) per member.
  void place_clique_members(std::span<const sim::Arrival> batch,
                            const std::vector<std::size_t>& clique,
                            const sim::ApLoadTracker& scratch,
                            const std::function<void(std::size_t, ApId)>& commit);

  /// Social cost of adding `user` to `ap` against the committed state:
  /// C(AP) = Σ_{w ∈ S(AP)} θ(user, w) over one batched theta_row call.
  /// `threshold < 0` counts weak ties too.
  double social_cost(const sim::ApLoadTracker& loads, UserId user, ApId ap,
                     double threshold);

  /// True while a fault directive routes batches to the embedded LLF.
  bool degraded() const noexcept {
    return controls_.force_fallback || !controls_.model_available;
  }

  const wlan::Network* net_;
  const social::ThetaProvider* model_;
  S3Config config_;
  LlfSelector llf_;
  S3Stats stats_;
  /// Directives of the batch in flight (select_one consults them when
  /// called standalone; place_batch refreshes them per request).
  sim::FaultControls controls_{};
  bool last_full_fidelity_ = true;
  bool warned_inexact_ = false;  ///< budget-exhaustion logged once
  /// Incremental θ-graph mirror (config_.incremental_cliques); seeded
  /// lazily on the first multi-arrival batch, synced per batch through
  /// the provider's ThetaDelta feed. Never affects placements — only
  /// how batch-graph edges are found.
  std::unique_ptr<social::CliqueMaintainer> maintainer_;
  // theta_row scratch, reused across social_cost calls.
  std::vector<UserId> row_users_;
  std::vector<double> row_theta_;
};

}  // namespace s3::core
