// Baseline AP-selection policies.
//
//  * LlfSelector — Least Loaded First [9], the state of the art the
//    paper measures against: a new user goes to the candidate AP with
//    the least workload (aggregate traffic, or station count).
//  * StrongestRssiSelector — the 802.11 default: strongest signal wins.
//  * RandomSelector — uniform over candidates; a sanity floor.
#pragma once

#include <cstdint>

#include "s3/sim/selector.h"
#include "s3/util/rng.h"

namespace s3::core {

enum class LoadMetric : std::uint8_t {
  kDemand = 0,    ///< aggregate offered Mbit/s (traffic-load LLF)
  kStations = 1,  ///< associated-station count (user-count LLF)
};

class LlfSelector final : public sim::ApSelector {
 public:
  explicit LlfSelector(LoadMetric metric = LoadMetric::kDemand) noexcept
      : metric_(metric) {}

  std::string_view name() const override { return "LLF"; }

  ApId select_one(const sim::Arrival& arrival,
                  const sim::ApLoadTracker& loads) override;

  LoadMetric metric() const noexcept { return metric_; }

  std::unique_ptr<sim::ApSelector> clone() const override {
    return std::make_unique<LlfSelector>(*this);
  }

 private:
  LoadMetric metric_;
};

class StrongestRssiSelector final : public sim::ApSelector {
 public:
  std::string_view name() const override { return "RSSI"; }

  ApId select_one(const sim::Arrival& arrival,
                  const sim::ApLoadTracker& loads) override;

  std::unique_ptr<sim::ApSelector> clone() const override {
    return std::make_unique<StrongestRssiSelector>(*this);
  }
};

class RandomSelector final : public sim::ApSelector {
 public:
  explicit RandomSelector(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  std::string_view name() const override { return "random"; }

  ApId select_one(const sim::Arrival& arrival,
                  const sim::ApLoadTracker& loads) override;

  /// (seed, draws) pins the mt19937 stream position — two instances
  /// with equal digests produce identical future picks.
  std::uint64_t state_digest() const override {
    util::SplitMix64 mix(seed_ ^ (draws_ * 0x9e3779b97f4a7c15ULL));
    return mix.next();
  }

  /// Copies the mt19937 engine mid-stream, so the clone's future draws
  /// match the original's exactly.
  std::unique_ptr<sim::ApSelector> clone() const override {
    return std::make_unique<RandomSelector>(*this);
  }

 private:
  std::uint64_t seed_;
  std::uint64_t draws_ = 0;
  util::Rng rng_;
};

/// Shared helper: least-loaded candidate under `metric`; ties broken by
/// the other metric, then by AP id (determinism).
ApId least_loaded(const sim::Arrival& arrival, const sim::ApLoadTracker& loads,
                  LoadMetric metric);

/// Same, over an explicit AP set (used by S3's tie-break fallback).
ApId least_loaded_of(std::span<const ApId> aps, const sim::ApLoadTracker& loads,
                     LoadMetric metric);

}  // namespace s3::core
