#include "s3/core/selector_factory.h"

#include <map>

#include "s3/util/thread_annotations.h"

namespace s3::core {

namespace {

/// splitmix64 finalizer: decorrelates the per-domain RNG streams from
/// the base seed and from each other.
std::uint64_t mix_seed(std::uint64_t seed, ControllerId domain) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (domain + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct Registry {
  util::Mutex mu;
  std::map<std::string, SelectorFactoryBuilder> builders S3_GUARDED_BY(mu);
};

Registry& registry() {
  static Registry& r = []() -> Registry& {
    static Registry reg;
    // Single-threaded (magic static), but the builders map is guarded,
    // so take the lock to keep the capability analysis exact.
    util::MutexLock lock(reg.mu);
    reg.builders["llf"] = [](const SelectorSpec& spec) {
      return std::make_unique<LlfFactory>(spec.llf_metric);
    };
    reg.builders["llf-demand"] = [](const SelectorSpec&) {
      return std::make_unique<LlfFactory>(LoadMetric::kDemand);
    };
    reg.builders["llf-stations"] = [](const SelectorSpec&) {
      return std::make_unique<LlfFactory>(LoadMetric::kStations);
    };
    reg.builders["rssi"] = [](const SelectorSpec&) {
      return std::make_unique<StrongestRssiFactory>();
    };
    reg.builders["random"] = [](const SelectorSpec& spec) {
      return std::make_unique<RandomFactory>(spec.random_seed);
    };
    reg.builders["s3"] = [](const SelectorSpec& spec) {
      S3_REQUIRE(spec.net != nullptr && spec.model != nullptr,
                 "selector registry: \"s3\" needs spec.net and spec.model");
      return std::make_unique<S3Factory>(spec.net, spec.model, spec.s3);
    };
    reg.builders["s3-online"] = [](const SelectorSpec& spec) {
      S3_REQUIRE(spec.net != nullptr && spec.base_model != nullptr,
                 "selector registry: \"s3-online\" needs spec.net and "
                 "spec.base_model");
      return std::make_unique<OnlineS3Factory>(spec.net, spec.base_model,
                                               spec.online);
    };
    return reg;
  }();
  return r;
}

}  // namespace

std::unique_ptr<sim::ApSelector> RandomFactory::create(
    ControllerId domain) const {
  return std::make_unique<RandomSelector>(mix_seed(seed_, domain));
}

S3Factory::S3Factory(const wlan::Network* net,
                     const social::ThetaProvider* model, S3Config config)
    : net_(net), model_(model), config_(config) {
  S3_REQUIRE(net_ != nullptr, "S3Factory: null network");
  S3_REQUIRE(model_ != nullptr, "S3Factory: null model");
}

OnlineS3Factory::OnlineS3Factory(const wlan::Network* net,
                                 const social::SocialIndexModel* base,
                                 OnlineS3Config config)
    : net_(net), base_(base), config_(config) {
  S3_REQUIRE(net_ != nullptr, "OnlineS3Factory: null network");
  S3_REQUIRE(base_ != nullptr, "OnlineS3Factory: null base model");
}

void register_selector(const std::string& name,
                       SelectorFactoryBuilder builder) {
  S3_REQUIRE(builder != nullptr, "register_selector: null builder");
  Registry& r = registry();
  util::MutexLock lock(r.mu);
  const bool inserted = r.builders.emplace(name, std::move(builder)).second;
  S3_REQUIRE(inserted, "register_selector: duplicate policy name: " + name);
}

std::vector<std::string> registered_selectors() {
  Registry& r = registry();
  util::MutexLock lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.builders.size());
  for (const auto& [name, builder] : r.builders) names.push_back(name);
  return names;  // std::map iteration: already sorted
}

std::unique_ptr<sim::SelectorFactory> make_selector_factory(
    const std::string& name, const SelectorSpec& spec) {
  SelectorFactoryBuilder builder;
  {
    Registry& r = registry();
    util::MutexLock lock(r.mu);
    const auto it = r.builders.find(name);
    if (it != r.builders.end()) builder = it->second;
  }
  if (!builder) {
    std::string known;
    for (const std::string& n : registered_selectors()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("unknown policy \"" + name +
                                "\" (registered: " + known + ")");
  }
  return builder(spec);
}

}  // namespace s3::core
