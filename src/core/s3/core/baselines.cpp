#include "s3/core/baselines.h"

namespace s3::core {

ApId least_loaded(const sim::Arrival& arrival, const sim::ApLoadTracker& loads,
                  LoadMetric metric) {
  return least_loaded_of(arrival.candidates, loads, metric);
}

ApId least_loaded_of(std::span<const ApId> aps, const sim::ApLoadTracker& loads,
                     LoadMetric metric) {
  S3_REQUIRE(!aps.empty(), "least_loaded: no candidates");
  ApId best = aps.front();
  for (ApId ap : aps) {
    double primary_best, primary_cur, secondary_best, secondary_cur;
    if (metric == LoadMetric::kDemand) {
      primary_best = loads.demand_mbps(best);
      primary_cur = loads.demand_mbps(ap);
      secondary_best = static_cast<double>(loads.station_count(best));
      secondary_cur = static_cast<double>(loads.station_count(ap));
    } else {
      primary_best = static_cast<double>(loads.station_count(best));
      primary_cur = static_cast<double>(loads.station_count(ap));
      secondary_best = loads.demand_mbps(best);
      secondary_cur = loads.demand_mbps(ap);
    }
    if (primary_cur < primary_best ||
        (primary_cur == primary_best && secondary_cur < secondary_best) ||
        (primary_cur == primary_best && secondary_cur == secondary_best &&
         ap < best)) {
      best = ap;
    }
  }
  return best;
}

ApId LlfSelector::select_one(const sim::Arrival& arrival,
                             const sim::ApLoadTracker& loads) {
  return least_loaded(arrival, loads, metric_);
}

ApId StrongestRssiSelector::select_one(const sim::Arrival& arrival,
                                       const sim::ApLoadTracker& loads) {
  (void)loads;
  S3_REQUIRE(!arrival.candidates.empty(), "RSSI: no candidates");
  return arrival.candidates.front();  // candidates are strongest-first
}

ApId RandomSelector::select_one(const sim::Arrival& arrival,
                                const sim::ApLoadTracker& loads) {
  (void)loads;
  S3_REQUIRE(!arrival.candidates.empty(), "random: no candidates");
  ++draws_;
  return arrival.candidates[rng_.index(arrival.candidates.size())];
}

}  // namespace s3::core
