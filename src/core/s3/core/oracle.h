// Offline dispersion upper bound.
//
// How balanced could *any* no-migration assignment have been, if the
// controller had known the whole future (every arrival, departure and
// demand) in advance? No online policy — S3 included — can beat this;
// the gap between LLF and this bound is the room the social heuristic
// is playing for, and "fraction of the gap closed" is a fairer score
// than absolute gains (EXPERIMENTS.md reports it).
//
// Because each slot's total domain load is fixed by the workload, the
// per-slot Chiu–Jain index is maximized exactly when Σ_ap load² is
// minimized, so the global objective Σ_{ap,slot} load² is separable and
// coordinate descent over per-session AP choices converges quickly from
// an LLF warm start.
#pragma once

#include <cstdint>

#include "s3/trace/trace.h"
#include "s3/wlan/network.h"
#include "s3/wlan/radio.h"

namespace s3::core {

struct OracleConfig {
  /// Load-averaging slot the objective is evaluated on.
  std::int64_t slot_s = 600;
  /// Coordinate-descent sweeps over all sessions (each sweep visits
  /// every session once, in a seeded random order).
  std::size_t max_passes = 25;
  /// Stop early when a whole pass improves the objective by less than
  /// this relative amount.
  double convergence_epsilon = 1e-6;
  wlan::RadioModel radio{};
  std::uint64_t seed = 1;
};

struct OracleResult {
  trace::Trace assigned;      ///< the optimized assignment
  std::size_t moves = 0;      ///< total accepted session moves
  std::size_t passes = 0;     ///< sweeps executed
  double initial_objective = 0.0;  ///< Σ load² of the LLF warm start
  double final_objective = 0.0;
};

/// Computes the clairvoyant assignment over the whole workload.
OracleResult offline_upper_bound(const wlan::Network& net,
                                 const trace::Trace& workload,
                                 const OracleConfig& config = {});

}  // namespace s3::core
