#include "s3/core/oracle.h"

#include <algorithm>
#include <numeric>

#include "s3/core/baselines.h"
#include "s3/sim/replay.h"
#include "s3/util/rng.h"

namespace s3::core {

namespace {

/// A session's load contribution per slot: (slot index, Mbit/s added).
struct SlotContribution {
  std::size_t slot;
  double mbps;
};

}  // namespace

OracleResult offline_upper_bound(const wlan::Network& net,
                                 const trace::Trace& workload,
                                 const OracleConfig& config) {
  S3_REQUIRE(config.slot_s > 0, "oracle: bad slot width");
  S3_REQUIRE(config.max_passes >= 1, "oracle: need at least one pass");

  // Warm start: the deployed policy's assignment.
  LlfSelector llf(LoadMetric::kStations);
  sim::ReplayConfig rc;
  rc.radio = config.radio;
  const sim::ReplayResult warm = sim::replay(net, workload, llf, rc);

  const auto sessions = warm.assigned.sessions();
  const std::int64_t begin = 0;
  const std::int64_t end = warm.assigned.end_time().seconds();
  const std::size_t num_slots =
      static_cast<std::size_t>((std::max<std::int64_t>(end - begin, 1) +
                                config.slot_s - 1) /
                               config.slot_s);

  // Precompute per-session slot contributions and candidate sets.
  std::vector<std::vector<SlotContribution>> contrib(sessions.size());
  std::vector<std::vector<ApId>> candidates(sessions.size());
  std::vector<ApId> current(sessions.size());
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const trace::SessionRecord& s = sessions[i];
    current[i] = s.ap;
    candidates[i] =
        wlan::candidate_aps(net, config.radio, s.building, s.pos);
    std::int64_t t = s.connect.seconds();
    const std::int64_t stop = s.disconnect.seconds();
    while (t < stop) {
      const std::int64_t slot = (t - begin) / config.slot_s;
      const std::int64_t seg_end =
          std::min(stop, begin + (slot + 1) * config.slot_s);
      contrib[i].push_back(
          {static_cast<std::size_t>(slot),
           s.demand_mbps * static_cast<double>(seg_end - t) /
               static_cast<double>(config.slot_s)});
      t = seg_end;
    }
  }

  // load[ap * num_slots + slot]
  std::vector<double> load(net.num_aps() * num_slots, 0.0);
  auto apply = [&](std::size_t i, ApId ap, double sign) {
    for (const SlotContribution& c : contrib[i]) {
      load[static_cast<std::size_t>(ap) * num_slots + c.slot] +=
          sign * c.mbps;
    }
  };
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    apply(i, current[i], +1.0);
  }

  auto objective = [&]() {
    double s = 0.0;
    for (double v : load) s += v * v;
    return s;
  };

  // Moving session i from AP a to AP b changes the objective by
  //   Σ_slots [ (L_b + r)² - L_b² + (L_a - r)² - L_a² ]
  // = Σ_slots [ 2 r (L_b - L_a) + 2 r² ].
  auto move_delta = [&](std::size_t i, ApId from, ApId to) {
    double delta = 0.0;
    const double* la = &load[static_cast<std::size_t>(from) * num_slots];
    const double* lb = &load[static_cast<std::size_t>(to) * num_slots];
    for (const SlotContribution& c : contrib[i]) {
      const double r = c.mbps;
      delta += 2.0 * r * (lb[c.slot] - la[c.slot]) + 2.0 * r * r;
    }
    return delta;
  };

  OracleResult result;
  result.initial_objective = objective();

  util::Rng rng(config.seed);
  std::vector<std::size_t> order(sessions.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  double prev_objective = result.initial_objective;
  for (std::size_t pass = 0; pass < config.max_passes; ++pass) {
    ++result.passes;
    rng.shuffle(order);
    for (std::size_t i : order) {
      ApId best = current[i];
      double best_delta = -1e-9;  // only accept strict improvements
      for (ApId cand : candidates[i]) {
        if (cand == current[i]) continue;
        const double d = move_delta(i, current[i], cand);
        if (d < best_delta) {
          best_delta = d;
          best = cand;
        }
      }
      if (best != current[i]) {
        apply(i, current[i], -1.0);
        apply(i, best, +1.0);
        current[i] = best;
        ++result.moves;
      }
    }
    const double now = objective();
    if (prev_objective - now <
        config.convergence_epsilon * std::max(prev_objective, 1.0)) {
      prev_objective = now;
      break;
    }
    prev_objective = now;
  }

  result.final_objective = prev_objective;
  result.assigned = warm.assigned.with_assignments(current);
  return result;
}

}  // namespace s3::core
