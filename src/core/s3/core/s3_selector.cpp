#include "s3/core/s3_selector.h"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>
#include <unordered_map>

#include "s3/analysis/balance.h"
#include "s3/util/metrics.h"

namespace s3::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kCostEps = 1e-12;

struct S3Metrics {
  util::Timer* clique_cover;
  util::Counter* distributions;
  util::Counter* exact_enumerations;
  util::Counter* beam_searches;
  util::Histogram* clique_size;
};

const S3Metrics& s3_metrics() {
  static const S3Metrics m{
      util::metrics().timer("core.s3.clique_cover_ns"),
      util::metrics().counter("core.s3.distributions_enumerated"),
      util::metrics().counter("core.s3.exact_enumerations"),
      util::metrics().counter("core.s3.beam_searches"),
      util::metrics().histogram("core.s3.clique_size"),
  };
  return m;
}

/// One candidate distribution of a clique over APs.
struct Distribution {
  std::vector<std::size_t> choice;  ///< per member: index into its candidates
  double cost = 0.0;
  bool feasible = true;
};

}  // namespace

S3Selector::S3Selector(const wlan::Network* net,
                       const social::ThetaProvider* model, S3Config config)
    : net_(net), model_(model), config_(config), llf_(config.llf_metric) {
  S3_REQUIRE(net_ != nullptr, "S3Selector: null network");
  S3_REQUIRE(model_ != nullptr, "S3Selector: null model");
  S3_REQUIRE(config_.theta_threshold >= 0.0, "S3Selector: bad threshold");
  S3_REQUIRE(config_.top_fraction > 0.0 && config_.top_fraction <= 1.0,
             "S3Selector: top_fraction outside (0,1]");
  S3_REQUIRE(config_.beam_width >= 1, "S3Selector: beam_width must be >= 1");
}

S3Selector::S3Selector(const S3Selector& other)
    : net_(other.net_),
      model_(other.model_),
      config_(other.config_),
      llf_(other.llf_),
      stats_(other.stats_),
      controls_(other.controls_),
      last_full_fidelity_(other.last_full_fidelity_),
      warned_inexact_(other.warned_inexact_) {
  // maintainer_ stays null: it is a cache over the θ provider, rebuilt
  // lazily — copying it would pin the copy to the source's feed cursor.
}

std::uint64_t S3Selector::state_digest() const {
  std::uint64_t h = 0x53335f646967ULL;  // "S3_dig"
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  };
  mix(stats_.batches);
  mix(stats_.singles);
  mix(stats_.cliques);
  mix(stats_.clique_members);
  mix(stats_.largest_clique);
  mix(stats_.exact_enumerations);
  mix(stats_.beam_searches);
  mix(stats_.bandwidth_fallbacks);
  mix(stats_.empty_candidate_fallbacks);
  mix(stats_.degraded_batches);
  mix(stats_.inexact_covers);
  mix(stats_.incremental_graph_batches);
  mix(last_full_fidelity_ ? 1 : 0);
  return h;
}

// C(AP) counts only *close* relations (θ above the graph's edge
// threshold) unless threshold < 0. The type prior alone gives every
// pair a small positive θ; summing those would turn C into a
// station-count proxy and make S3 fight LLF's traffic balancing for
// users with no real ties — exactly the case the pseudocode routes to
// LLF ("if there are multiple candidate APs to choose, apply LLF").
// The station users are gathered once and scored with a single
// theta_row call: one batched probe sweep instead of |S(AP)| virtual
// scalar lookups. Summation order matches the station iteration order,
// so the total is bit-identical to the old per-station loop.
double S3Selector::social_cost(const sim::ApLoadTracker& loads, UserId user,
                               ApId ap, double threshold) {
  row_users_.clear();
  loads.for_each_station(ap, [&](const sim::ActiveStation& st) {
    row_users_.push_back(st.user);
  });
  if (row_users_.empty()) return 0.0;
  if (row_theta_.size() < row_users_.size()) {
    row_theta_.resize(row_users_.size());
  }
  const std::span<double> out =
      std::span<double>(row_theta_).first(row_users_.size());
  model_->theta_row(user, row_users_, out);
  double cost = 0.0;
  for (const double th : out) {
    if (threshold < 0.0 || th > threshold) cost += th;
  }
  return cost;
}

ApId S3Selector::select_one(const sim::Arrival& arrival,
                            const sim::ApLoadTracker& loads) {
  if (arrival.candidates.empty()) {
    // Caller contract breach; count it before the precondition throws
    // so the two fallback flavours stay distinguishable in stats.
    ++stats_.empty_candidate_fallbacks;
  }
  S3_REQUIRE(!arrival.candidates.empty(), "S3: no candidates");
  if (degraded()) {
    return least_loaded(arrival, loads, config_.llf_metric);
  }

  double best = kInf;
  std::vector<ApId> ties;
  for (ApId ap : arrival.candidates) {
    if (config_.respect_bandwidth &&
        loads.headroom_mbps(ap) < arrival.demand_mbps) {
      continue;  // infinite cost (line 8–9 of Algorithm 1)
    }
    const double cost =
        social_cost(loads, arrival.user, ap,
                    config_.count_weak_ties_in_cost ? -1.0
                                                    : config_.theta_threshold);
    if (cost < best - kCostEps) {
      best = cost;
      ties.assign(1, ap);
    } else if (cost <= best + kCostEps) {
      ties.push_back(ap);
    }
  }
  if (ties.empty()) {
    // Every candidate violates the bandwidth constraint: the request
    // cannot be refused, degrade to LLF over all candidates.
    ++stats_.bandwidth_fallbacks;
    return least_loaded(arrival, loads, config_.llf_metric);
  }
  if (ties.size() == 1) return ties.front();
  // Pure tie (typically all-zero social cost): LLF, per the pseudocode.
  return least_loaded_of(ties, loads, config_.llf_metric);
}

sim::BatchResult S3Selector::place_batch(const sim::BatchRequest& request,
                                         const sim::ApLoadTracker& loads) {
  const std::span<const sim::Arrival> batch = request.arrivals;
  controls_ = request.faults;
  if (batch.empty()) return {};
  ++stats_.batches;
  if (degraded()) {
    // Fault directive: the social model is out (or the engine's state
    // machine ordered a fallback batch) — serve with the embedded LLF,
    // the same deployed-controller policy the pseudocode falls back to.
    ++stats_.degraded_batches;
    last_full_fidelity_ = controls_.model_available;
    sim::BatchResult fallback = llf_.place_batch(request, loads);
    fallback.full_fidelity = last_full_fidelity_;
    return fallback;
  }
  last_full_fidelity_ = true;
  std::vector<ApId> result(batch.size(), kInvalidAp);
  sim::ApLoadTracker scratch = loads;

  auto commit = [&](std::size_t batch_index, ApId ap) {
    const sim::Arrival& a = batch[batch_index];
    scratch.associate(a.session_index, ap, a.user, a.demand_mbps);
    result[batch_index] = ap;
  };

  // ---- Social graph over the batch (vertices = batch indices) -------
  // Incremental path: the maintainer mirrors the provider's strict
  // θ > threshold edge set (synced through the ThetaDelta feed), so
  // batch edges are found by sparse neighbor probes instead of
  // O(batch²) θ evaluations. Both paths apply the same edge rule to
  // the same θ values, so the graph — and every placement derived
  // from it — is bit-identical. Single-arrival batches have no pairs
  // and skip straight past (and never pay the maintainer's seeding).
  social::WeightedGraph graph(batch.size());
  if (config_.incremental_cliques && batch.size() >= 2) {
    ++stats_.incremental_graph_batches;
    if (maintainer_ == nullptr) {
      social::CliqueMaintainerConfig mc;
      mc.theta_threshold = config_.theta_threshold;
      mc.clique = config_.clique;
      maintainer_ = std::make_unique<social::CliqueMaintainer>(0, mc);
    }
    maintainer_->sync(*model_);
    std::vector<UserId> users(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) users[i] = batch[i].user;
    graph = maintainer_->induced_batch_graph(users);
  } else {
    // One theta_row per vertex against the suffix of the batch: θ is
    // symmetric, so the upper triangle covers every pair.
    std::vector<UserId> users(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) users[i] = batch[i].user;
    std::vector<double> row(batch.size(), 0.0);
    for (std::size_t i = 0; i + 1 < batch.size(); ++i) {
      const std::span<const UserId> vs =
          std::span<const UserId>(users).subspan(i + 1);
      const std::span<double> out = std::span<double>(row).first(vs.size());
      model_->theta_row(users[i], vs, out);
      for (std::size_t j = 0; j < vs.size(); ++j) {
        if (out[j] > config_.theta_threshold) {
          graph.add_edge(i, i + 1 + j, out[j]);
        }
      }
    }
  }

  // ---- Iterative clique extraction + placement ----------------------
  social::CliqueConfig clique_config = config_.clique;
  if (controls_.clique_node_budget > 0) {
    clique_config.node_budget =
        std::min(clique_config.node_budget, controls_.clique_node_budget);
  }
  social::CliqueCoverResult cover_result;
  {
    util::ScopedTimer timing(s3_metrics().clique_cover);
    cover_result = social::clique_cover(graph, clique_config);
  }
  if (!cover_result.exact) {
    ++stats_.inexact_covers;
    last_full_fidelity_ = false;
    if (!warned_inexact_) {
      warned_inexact_ = true;
      std::cerr << "s3: clique node budget exhausted on a batch graph; "
                   "covers may be suboptimal (reported once per replay; see "
                   "counter social.clique_budget_exhausted)\n";
    }
  }

  for (const std::vector<std::size_t>& clique : cover_result.cliques) {
    if (clique.size() == 1) {
      ++stats_.singles;
      const sim::Arrival& a = batch[clique.front()];
      commit(clique.front(), select_one(a, scratch));
      continue;
    }
    ++stats_.cliques;
    stats_.clique_members += clique.size();
    stats_.largest_clique = std::max(stats_.largest_clique, clique.size());
    s3_metrics().clique_size->record(clique.size());
    place_clique_members(batch, clique, scratch, commit);
  }
  return {std::move(result), last_full_fidelity_};
}

void S3Selector::place_clique_members(
    std::span<const sim::Arrival> batch,
    const std::vector<std::size_t>& clique, const sim::ApLoadTracker& scratch,
    const std::function<void(std::size_t, ApId)>& commit) {
  const std::size_t m = clique.size();

  // Precompute, per member, the per-candidate base social cost against
  // the committed state, and the intra-clique θ matrix (one theta_row
  // per member against the later members — θ is symmetric).
  std::vector<std::vector<double>> member_base(m);
  for (std::size_t k = 0; k < m; ++k) {
    const sim::Arrival& a = batch[clique[k]];
    member_base[k].reserve(a.candidates.size());
    for (ApId ap : a.candidates) {
      member_base[k].push_back(social_cost(
          scratch, a.user, ap,
          config_.count_weak_ties_in_cost ? -1.0 : config_.theta_threshold));
    }
  }
  std::vector<double> theta(m * m, 0.0);
  {
    std::vector<UserId> members(m);
    for (std::size_t k = 0; k < m; ++k) members[k] = batch[clique[k]].user;
    std::vector<double> row(m, 0.0);
    for (std::size_t i = 0; i + 1 < m; ++i) {
      const std::span<const UserId> vs =
          std::span<const UserId>(members).subspan(i + 1);
      const std::span<double> out = std::span<double>(row).first(vs.size());
      model_->theta_row(members[i], vs, out);
      for (std::size_t j = 0; j < vs.size(); ++j) {
        theta[i * m + (i + 1 + j)] = out[j];
        theta[(i + 1 + j) * m + i] = out[j];
      }
    }
  }

  // Cost/feasibility of extending a partial distribution with member k
  // on candidate index c, given per-AP demand already added by earlier
  // members of this distribution.
  auto extend_cost = [&](const Distribution& d, std::size_t k, std::size_t c,
                         std::unordered_map<ApId, double>& added) -> double {
    const sim::Arrival& a = batch[clique[k]];
    const ApId ap = a.candidates[c];
    added.clear();
    for (std::size_t p = 0; p < k; ++p) {
      added[batch[clique[p]].candidates[d.choice[p]]] +=
          batch[clique[p]].demand_mbps;
    }
    if (config_.respect_bandwidth &&
        scratch.headroom_mbps(ap) - added[ap] < a.demand_mbps) {
      return kInf;
    }
    double cost = member_base[k][c];
    for (std::size_t p = 0; p < k; ++p) {
      if (batch[clique[p]].candidates[d.choice[p]] == ap) {
        cost += theta[k * m + p];
      }
    }
    return cost;
  };

  // ---- Enumerate (exact or beam) -------------------------------------
  double space = 1.0;
  for (std::size_t k = 0; k < m; ++k) {
    space *= static_cast<double>(batch[clique[k]].candidates.size());
    if (space > 1e18) break;
  }

  std::vector<Distribution> frontier{Distribution{}};
  const bool exact = space <= static_cast<double>(config_.enumeration_limit);
  if (exact) {
    ++stats_.exact_enumerations;
    s3_metrics().exact_enumerations->add();
  } else {
    ++stats_.beam_searches;
    s3_metrics().beam_searches->add();
  }
  std::unordered_map<ApId, double> added_scratchpad;

  for (std::size_t k = 0; k < m; ++k) {
    const std::size_t n_cand = batch[clique[k]].candidates.size();
    std::vector<Distribution> next;
    next.reserve(frontier.size() * n_cand);
    for (const Distribution& d : frontier) {
      for (std::size_t c = 0; c < n_cand; ++c) {
        const double step = extend_cost(d, k, c, added_scratchpad);
        Distribution e = d;
        e.choice.push_back(c);
        if (step == kInf) {
          e.feasible = false;
          e.cost = kInf;
        } else if (e.feasible) {
          e.cost += step;
        }
        next.push_back(std::move(e));
      }
    }
    s3_metrics().distributions->add(next.size());
    if (!exact && next.size() > config_.beam_width) {
      std::nth_element(next.begin(),
                       next.begin() + static_cast<std::ptrdiff_t>(
                                          config_.beam_width),
                       next.end(),
                       [](const Distribution& a, const Distribution& b) {
                         return a.cost < b.cost;
                       });
      next.resize(config_.beam_width);
    }
    frontier = std::move(next);
  }

  // Keep feasible distributions only; if none, place members one by one
  // via the single-user path (which itself degrades to LLF).
  std::vector<Distribution> feasible;
  for (Distribution& d : frontier) {
    if (d.feasible) feasible.push_back(std::move(d));
  }
  if (feasible.empty()) {
    sim::ApLoadTracker local = scratch;
    for (std::size_t k = 0; k < m; ++k) {
      const sim::Arrival& a = batch[clique[k]];
      const ApId ap = select_one(a, local);
      local.associate(a.session_index, ap, a.user, a.demand_mbps);
      commit(clique[k], ap);
    }
    return;
  }

  // Sort by total social cost; keep the cheapest top_fraction (line 6
  // of Algorithm 1), then pick the best balance index among them.
  std::sort(feasible.begin(), feasible.end(),
            [](const Distribution& a, const Distribution& b) {
              return a.cost < b.cost;
            });
  std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(static_cast<double>(feasible.size()) *
                       config_.top_fraction)));
  // Extend across cost ties at the boundary so the balance tie-break
  // sees every distribution as cheap as the last kept one.
  while (keep < feasible.size() &&
         feasible[keep].cost <= feasible[keep - 1].cost + kCostEps) {
    ++keep;
  }

  const auto domain = net_->aps_of_controller(batch[clique[0]].controller);
  std::vector<double> loads_base(domain.size());
  std::unordered_map<ApId, std::size_t> domain_index;
  for (std::size_t i = 0; i < domain.size(); ++i) {
    loads_base[i] = scratch.demand_mbps(domain[i]);
    domain_index.emplace(domain[i], i);
  }

  const Distribution* best = &feasible.front();
  double best_beta = -1.0;
  std::vector<double> loads_tmp;
  for (std::size_t i = 0; i < keep; ++i) {
    loads_tmp = loads_base;
    for (std::size_t k = 0; k < m; ++k) {
      const sim::Arrival& a = batch[clique[k]];
      const ApId ap = a.candidates[feasible[i].choice[k]];
      const auto it = domain_index.find(ap);
      if (it != domain_index.end()) {
        loads_tmp[it->second] += a.demand_mbps;
      }
    }
    const double beta = analysis::normalized_balance_index(loads_tmp);
    if (beta > best_beta) {
      best_beta = beta;
      best = &feasible[i];
    }
  }

  for (std::size_t k = 0; k < m; ++k) {
    commit(clique[k], batch[clique[k]].candidates[best->choice[k]]);
  }
}

}  // namespace s3::core
