// Concrete SelectorFactory implementations + a name registry.
//
// The sharded ReplayDriver needs one policy instance per controller
// domain (controllers are independent; a shared mutable instance would
// serialize them). Each shipped policy therefore comes with a factory
// that stamps out per-domain instances:
//
//   * LlfFactory            — "LLF", stateless; metric configurable
//   * StrongestRssiFactory  — "RSSI", stateless
//   * RandomFactory         — "random"; per-domain RNG streams derived
//                             deterministically from (seed, domain) so
//                             replays are thread-schedule independent
//   * S3Factory             — "S3" over a shared frozen ThetaProvider
//                             (read-only, safe across threads)
//   * OnlineS3Factory       — "S3-online"; each domain learns from its
//                             own events, which is exactly the
//                             knowledge a real per-domain controller
//                             would have
//
// The registry maps policy names to factory builders so tools (CLI,
// benches) can construct any registered policy from flags; new
// policies register themselves via register_selector().
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "s3/core/baselines.h"
#include "s3/core/online_s3.h"
#include "s3/core/s3_selector.h"

namespace s3::core {

class LlfFactory final : public sim::SelectorFactory {
 public:
  explicit LlfFactory(LoadMetric metric = LoadMetric::kDemand) noexcept
      : metric_(metric) {}
  std::string_view name() const override { return "LLF"; }
  std::unique_ptr<sim::ApSelector> create(ControllerId) const override {
    return std::make_unique<LlfSelector>(metric_);
  }

 private:
  LoadMetric metric_;
};

class StrongestRssiFactory final : public sim::SelectorFactory {
 public:
  std::string_view name() const override { return "RSSI"; }
  std::unique_ptr<sim::ApSelector> create(ControllerId) const override {
    return std::make_unique<StrongestRssiSelector>();
  }
};

class RandomFactory final : public sim::SelectorFactory {
 public:
  explicit RandomFactory(std::uint64_t seed) noexcept : seed_(seed) {}
  std::string_view name() const override { return "random"; }
  std::unique_ptr<sim::ApSelector> create(ControllerId domain) const override;

 private:
  std::uint64_t seed_;
};

class S3Factory final : public sim::SelectorFactory {
 public:
  /// `net` and `model` must outlive the factory and every instance it
  /// creates; both are only ever read at selection time.
  S3Factory(const wlan::Network* net, const social::ThetaProvider* model,
            S3Config config = {});
  std::string_view name() const override { return "S3"; }
  std::unique_ptr<sim::ApSelector> create(ControllerId) const override {
    return std::make_unique<S3Selector>(net_, model_, config_);
  }

 private:
  const wlan::Network* net_;
  const social::ThetaProvider* model_;
  S3Config config_;
};

class OnlineS3Factory final : public sim::SelectorFactory {
 public:
  /// Each created instance wraps `base` with its own live pair
  /// statistics, fed only by its domain's events — the same knowledge
  /// horizon a physically separate controller has.
  OnlineS3Factory(const wlan::Network* net,
                  const social::SocialIndexModel* base,
                  OnlineS3Config config = {});
  std::string_view name() const override { return "S3-online"; }
  std::unique_ptr<sim::ApSelector> create(ControllerId) const override {
    return std::make_unique<OnlineS3Selector>(net_, base_, config_);
  }

 private:
  const wlan::Network* net_;
  const social::SocialIndexModel* base_;
  OnlineS3Config config_;
};

/// Everything a registered factory builder may need. Policies ignore
/// the fields they do not use; "s3" requires net+model, "s3-online"
/// requires net+base_model.
struct SelectorSpec {
  LoadMetric llf_metric = LoadMetric::kDemand;
  std::uint64_t random_seed = 1;
  const wlan::Network* net = nullptr;
  const social::ThetaProvider* model = nullptr;
  const social::SocialIndexModel* base_model = nullptr;
  S3Config s3{};
  OnlineS3Config online{};
};

using SelectorFactoryBuilder =
    std::function<std::unique_ptr<sim::SelectorFactory>(const SelectorSpec&)>;

/// Adds a policy to the registry; throws on duplicate names. The
/// built-ins ("llf", "llf-demand", "llf-stations", "rssi", "random",
/// "s3", "s3-online") are pre-registered.
void register_selector(const std::string& name, SelectorFactoryBuilder builder);

/// Registered policy names, sorted.
std::vector<std::string> registered_selectors();

/// Builds the factory registered under `name`; throws
/// std::invalid_argument (listing the known names) on an unknown name
/// or a spec missing a required field.
std::unique_ptr<sim::SelectorFactory> make_selector_factory(
    const std::string& name, const SelectorSpec& spec);

}  // namespace s3::core
