#include "s3/core/rebalancer.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>

namespace s3::core {

namespace {

struct ActiveSession {
  UserId user = kInvalidUser;
  ApId ap = kInvalidAp;
  double demand_mbps = 0.0;
  std::vector<ApId> candidates;
  bool migrated = false;
};

struct Departure {
  util::SimTime when;
  std::size_t session_index;
};

struct DepartureLater {
  bool operator()(const Departure& a, const Departure& b) const noexcept {
    if (a.when != b.when) return a.when > b.when;
    return a.session_index > b.session_index;
  }
};

}  // namespace

RebalanceResult simulate_with_migration(const wlan::Network& net,
                                        const trace::Trace& workload,
                                        const RebalancerConfig& config) {
  S3_REQUIRE(config.sweep_period_s > 0, "rebalancer: bad sweep period");
  S3_REQUIRE(config.slot_s > 0, "rebalancer: bad slot width");

  const util::SimTime begin(0);
  const util::SimTime end = workload.end_time();
  const std::size_t num_slots = static_cast<std::size_t>(
      (std::max<std::int64_t>(end.seconds() - begin.seconds(), 1) +
       config.slot_s - 1) /
      config.slot_s);

  RebalanceResult result;
  result.begin = begin;
  result.slot_s = config.slot_s;
  result.num_slots = num_slots;
  result.disruptions_per_user.assign(workload.num_users(), 0);
  result.slot_load.resize(net.num_controllers());
  std::vector<std::size_t> domain_size(net.num_controllers());
  std::vector<std::size_t> ap_index(net.num_aps());
  for (ControllerId c = 0; c < net.num_controllers(); ++c) {
    const auto domain = net.aps_of_controller(c);
    domain_size[c] = domain.size();
    result.slot_load[c].assign(num_slots * domain.size(), 0.0);
    for (std::size_t k = 0; k < domain.size(); ++k) ap_index[domain[k]] = k;
  }

  sim::ApLoadTracker tracker(net);
  std::unordered_map<std::size_t, ActiveSession> active;
  std::priority_queue<Departure, std::vector<Departure>, DepartureLater>
      departures;

  // ---- Load-integral accumulation -------------------------------------
  util::SimTime last_t = begin;
  auto advance = [&](util::SimTime now) {
    if (now <= last_t) return;
    std::int64_t t = last_t.seconds();
    const std::int64_t stop = std::min(now.seconds(), end.seconds());
    while (t < stop) {
      const std::int64_t slot = (t - begin.seconds()) / config.slot_s;
      const std::int64_t seg_end = std::min(
          stop, begin.seconds() + (slot + 1) * config.slot_s);
      const double dt = static_cast<double>(seg_end - t);
      for (ControllerId c = 0; c < net.num_controllers(); ++c) {
        const auto domain = net.aps_of_controller(c);
        for (std::size_t k = 0; k < domain.size(); ++k) {
          result.slot_load[c][static_cast<std::size_t>(slot) * domain.size() +
                              k] += tracker.demand_mbps(domain[k]) * dt;
        }
      }
      t = seg_end;
    }
    last_t = now;
  };

  const fault::FaultInjector* injector = config.injector;
  auto ap_down = [&](ApId ap, util::SimTime now) {
    return injector != nullptr && injector->ap_down(ap, now);
  };

  // Bandwidth-aware placement over surviving candidates: least loaded
  // among the APs with headroom, least loaded overall when every
  // surviving AP is full (the association cannot be refused), kInvalidAp
  // when the outage blacked out the whole candidate set.
  auto place_on_surviving = [&](const sim::Arrival& a, util::SimTime now) {
    std::vector<ApId> up;
    for (const ApId ap : a.candidates) {
      if (!ap_down(ap, now)) up.push_back(ap);
    }
    if (up.empty()) return kInvalidAp;
    std::vector<ApId> fits;
    for (const ApId ap : up) {
      if (tracker.headroom_mbps(ap) >= a.demand_mbps) fits.push_back(ap);
    }
    return least_loaded_of(fits.empty() ? up : fits, tracker,
                           config.arrival_metric);
  };

  // ---- Migration sweep -------------------------------------------------
  auto sweep_controller = [&](ControllerId c, util::SimTime now) {
    const auto domain = net.aps_of_controller(c);
    for (std::size_t m = 0; m < config.max_migrations_per_sweep; ++m) {
      ApId donor = kInvalidAp, receiver = kInvalidAp;
      for (ApId ap : domain) {
        if (ap_down(ap, now)) continue;
        if (donor == kInvalidAp ||
            tracker.demand_mbps(ap) > tracker.demand_mbps(donor)) {
          donor = ap;
        }
        if (receiver == kInvalidAp ||
            tracker.demand_mbps(ap) < tracker.demand_mbps(receiver)) {
          receiver = ap;
        }
      }
      if (donor == kInvalidAp || receiver == kInvalidAp) return;
      const double gap =
          tracker.demand_mbps(donor) - tracker.demand_mbps(receiver);
      if (gap <= config.hysteresis_mbps) return;

      // Best movable station: minimizes the post-move donor/receiver
      // gap. Candidates are gathered and sorted first so a float tie
      // resolves to the lowest session id, not to hash order.
      std::vector<std::size_t> movable;
      // s3lint: allow(det-unordered-iter): keys are collected then sorted.
      for (const auto& [sid, s] : active) {
        if (s.ap != donor) continue;
        if (std::find(s.candidates.begin(), s.candidates.end(), receiver) ==
            s.candidates.end()) {
          continue;  // receiver not audible for this station
        }
        movable.push_back(sid);
      }
      std::sort(movable.begin(), movable.end());
      std::size_t best_session = std::numeric_limits<std::size_t>::max();
      double best_new_gap = gap;
      for (const std::size_t sid : movable) {
        const double new_gap =
            std::abs(gap - 2.0 * active.at(sid).demand_mbps);
        if (new_gap < best_new_gap - 1e-12) {
          best_new_gap = new_gap;
          best_session = sid;
        }
      }
      if (best_session == std::numeric_limits<std::size_t>::max()) return;
      if (best_new_gap >= gap - config.hysteresis_mbps) return;

      ActiveSession& s = active[best_session];
      tracker.disconnect(best_session, donor);
      tracker.associate(best_session, receiver, s.user, s.demand_mbps);
      s.ap = receiver;
      s.migrated = true;
      ++result.migrations;
      ++result.disruptions_per_user[s.user];
    }
  };

  // ---- AP outage eviction ----------------------------------------------
  // Stations on a failing AP are re-placed immediately on the least
  // loaded surviving audible AP with headroom; a station whose whole
  // candidate set is down is dropped (its departure entry is skipped).
  auto evict_ap = [&](ApId down_ap, util::SimTime now) {
    std::vector<std::size_t> victims;
    // s3lint: allow(det-unordered-iter): keys are collected then sorted.
    for (const auto& [sid, s] : active) {
      if (s.ap == down_ap) victims.push_back(sid);
    }
    std::sort(victims.begin(), victims.end());
    for (const std::size_t sid : victims) {
      ActiveSession& s = active.at(sid);
      tracker.disconnect(sid, s.ap);
      ++result.fault_evictions;
      ++result.disruptions_per_user[s.user];
      s.migrated = true;
      sim::Arrival a;
      a.session_index = sid;
      a.user = s.user;
      a.demand_mbps = s.demand_mbps;
      a.candidates = s.candidates;
      const ApId target = place_on_surviving(a, now);
      if (target == kInvalidAp) {
        ++result.dropped_sessions;
        active.erase(sid);
        continue;
      }
      tracker.associate(sid, target, s.user, s.demand_mbps);
      s.ap = target;
    }
  };

  // Flattened fault schedule across every domain, sorted (when, up
  // before down, ap) — same convention as the runtime engines.
  std::vector<fault::ApFaultEvent> fault_events;
  if (injector != nullptr) {
    for (ControllerId c = 0; c < net.num_controllers(); ++c) {
      const auto domain_events = injector->events_for_domain(net, c);
      fault_events.insert(fault_events.end(), domain_events.begin(),
                          domain_events.end());
    }
    std::sort(fault_events.begin(), fault_events.end(),
              [](const fault::ApFaultEvent& a, const fault::ApFaultEvent& b) {
                if (a.when != b.when) return a.when < b.when;
                if (a.kind != b.kind) {
                  return a.kind == fault::ApFaultEvent::Kind::kUp;
                }
                return a.ap < b.ap;
              });
  }
  std::size_t next_fault = 0;

  // ---- Event loop -------------------------------------------------------
  const auto sessions = workload.sessions();
  std::size_t next_arrival = 0;
  std::size_t disrupted_sessions = 0;
  util::SimTime next_sweep = begin + util::SimTime(config.sweep_period_s);
  const auto inf = util::SimTime(std::numeric_limits<std::int64_t>::max());

  while (true) {
    const util::SimTime ta =
        next_arrival < sessions.size() ? sessions[next_arrival].connect : inf;
    const util::SimTime td = departures.empty() ? inf : departures.top().when;
    const util::SimTime ts = next_sweep < end ? next_sweep : inf;
    const util::SimTime tfault =
        next_fault < fault_events.size() ? fault_events[next_fault].when : inf;
    if (ta == inf && td == inf) break;

    if (tfault <= td && tfault <= ta && tfault <= ts) {
      advance(tfault);
      const fault::ApFaultEvent& ev = fault_events[next_fault++];
      if (ev.kind == fault::ApFaultEvent::Kind::kDown) {
        evict_ap(ev.ap, ev.when);
      } else {
        // Recovery: rebalance the domain onto the restored AP at once
        // rather than waiting for the next periodic sweep.
        sweep_controller(net.controller_of_ap(ev.ap), ev.when);
      }
      continue;
    }
    if (td <= ta && td <= ts) {
      advance(td);
      const Departure d = departures.top();
      departures.pop();
      const auto it = active.find(d.session_index);
      if (it == active.end()) continue;  // dropped by an outage
      tracker.disconnect(d.session_index, it->second.ap);
      if (it->second.migrated) ++disrupted_sessions;
      active.erase(it);
      continue;
    }
    if (ta <= ts) {
      advance(ta);
      const trace::SessionRecord& rec = sessions[next_arrival];
      ActiveSession s;
      s.user = rec.user;
      s.demand_mbps = rec.demand_mbps;
      s.candidates =
          wlan::candidate_aps(net, config.radio, rec.building, rec.pos);
      sim::Arrival a;
      a.session_index = next_arrival;
      a.user = rec.user;
      a.demand_mbps = rec.demand_mbps;
      a.candidates = s.candidates;
      const ApId chosen = injector != nullptr
                              ? place_on_surviving(a, ta)
                              : least_loaded(a, tracker, config.arrival_metric);
      if (chosen == kInvalidAp) {
        ++result.dropped_sessions;
        ++next_arrival;
        continue;
      }
      s.ap = chosen;
      tracker.associate(next_arrival, s.ap, s.user, s.demand_mbps);
      active.emplace(next_arrival, std::move(s));
      departures.push(Departure{rec.disconnect, next_arrival});
      ++next_arrival;
      continue;
    }
    advance(ts);
    for (ControllerId c = 0; c < net.num_controllers(); ++c) {
      sweep_controller(c, ts);
    }
    next_sweep += util::SimTime(config.sweep_period_s);
  }
  advance(end);

  // Convert Mbit integrals to mean Mbit/s per slot.
  for (auto& per_controller : result.slot_load) {
    for (double& v : per_controller) v /= static_cast<double>(config.slot_s);
  }
  result.disrupted_session_fraction =
      workload.size() > 0
          ? static_cast<double>(disrupted_sessions) /
                static_cast<double>(workload.size())
          : 0.0;
  return result;
}

}  // namespace s3::core
