#include "s3/core/evaluation.h"

#include <cmath>

namespace s3::core {

namespace {

trace::Trace window_of(const trace::Trace& workload, int first_day,
                       int last_day_exclusive) {
  return workload.slice(util::SimTime::from_days(first_day),
                        util::SimTime::from_days(last_day_exclusive));
}

bool in_leave_peak(util::SimTime t,
                   const std::vector<std::pair<double, double>>& peaks) {
  const double h = static_cast<double>(t.second_of_day()) / 3600.0;
  for (const auto& [lo, hi] : peaks) {
    if (h >= lo && h < hi) return true;
  }
  return false;
}

runtime::ReplayDriver make_driver(const wlan::Network& net,
                                  const EvaluationConfig& config) {
  runtime::ReplayDriverConfig driver_config;
  driver_config.replay = config.replay;
  driver_config.threads = config.threads;
  return runtime::ReplayDriver(net, driver_config);
}

/// Scores an already-replayed test window (shared by both
/// score_policy overloads).
PolicyScore score_replay(const wlan::Network& net,
                         const sim::ReplayResult& run,
                         std::string policy_name,
                         const EvaluationConfig& config) {
  const int test_begin = config.train_days;
  const int test_end = config.train_days + config.test_days;

  analysis::ThroughputOptions opts;
  opts.slot_s = config.eval_slot_s;
  const util::SimTime begin = util::SimTime::from_days(test_begin);
  const util::SimTime end = util::SimTime::from_days(test_end);
  const analysis::ThroughputSeries series(net, run.assigned, begin, end, opts);

  PolicyScore score;
  score.policy = std::move(policy_name);
  score.replay_stats = run.stats;
  score.per_controller_mean.resize(net.num_controllers());
  score.per_controller_ci95.resize(net.num_controllers());

  util::RunningStats all;
  util::RunningStats peak;
  for (ControllerId c = 0; c < net.num_controllers(); ++c) {
    util::RunningStats ctrl;
    for (std::size_t slot = 0; slot < series.num_slots(); ++slot) {
      const double hour =
          static_cast<double>(series.slot_begin(slot).second_of_day()) / 3600.0;
      if (hour < config.score_hours_begin || hour >= config.score_hours_end) {
        continue;
      }
      if (series.total_load(c, slot) < config.min_slot_load_mbps) continue;
      const double beta =
          analysis::normalized_balance_index(series.slot_load(c, slot));
      ctrl.add(beta);
      all.add(beta);
      if (in_leave_peak(series.slot_begin(slot), config.leave_peak_hours)) {
        peak.add(beta);
      }
    }
    score.per_controller_mean[c] = ctrl.mean();
    score.per_controller_ci95[c] = ctrl.ci95_halfwidth();
  }
  score.mean = all.mean();
  score.ci95 = all.ci95_halfwidth();
  score.per_site_ci95 =
      util::mean(score.per_controller_ci95);
  score.leave_peak_mean = peak.mean();
  score.slots_scored = all.count();
  return score;
}

}  // namespace

social::SocialIndexModel train_from_workload(const wlan::Network& net,
                                             const trace::Trace& workload,
                                             const EvaluationConfig& config) {
  S3_REQUIRE(config.train_days >= 1, "evaluation: train_days must be >= 1");
  const trace::Trace training = window_of(workload, 0, config.train_days);
  const LlfFactory llf(config.baseline_metric);
  const sim::ReplayResult collected =
      make_driver(net, config).run(training, llf);
  return social::SocialIndexModel::train(collected.assigned, config.social);
}

PolicyScore score_policy(const wlan::Network& net,
                         const trace::Trace& workload,
                         const sim::SelectorFactory& factory,
                         const EvaluationConfig& config) {
  S3_REQUIRE(config.test_days >= 1, "evaluation: test_days must be >= 1");
  const int test_begin = config.train_days;
  const int test_end = config.train_days + config.test_days;
  const trace::Trace test = window_of(workload, test_begin, test_end);

  const sim::ReplayResult run = make_driver(net, config).run(test, factory);
  return score_replay(net, run, std::string(factory.name()), config);
}

PolicyScore score_policy(const wlan::Network& net,
                         const trace::Trace& workload,
                         sim::ApSelector& policy,
                         const EvaluationConfig& config) {
  S3_REQUIRE(config.test_days >= 1, "evaluation: test_days must be >= 1");
  const int test_begin = config.train_days;
  const int test_end = config.train_days + config.test_days;
  const trace::Trace test = window_of(workload, test_begin, test_end);

  const sim::ReplayResult run =
      make_driver(net, config).run_sequential(test, policy);
  return score_replay(net, run, std::string(policy.name()), config);
}

ComparisonResult compare_s3_vs_llf(const wlan::Network& net,
                                   const trace::Trace& workload,
                                   const EvaluationConfig& config) {
  const social::SocialIndexModel model =
      train_from_workload(net, workload, config);

  ComparisonResult result;
  {
    const LlfFactory llf(config.baseline_metric);
    result.llf = score_policy(net, workload, llf, config);
  }
  {
    const S3Factory s3(&net, &model, config.s3);
    result.s3 = score_policy(net, workload, s3, config);
  }

  if (result.llf.mean > 0.0) {
    result.balance_gain = (result.s3.mean - result.llf.mean) / result.llf.mean;
  }
  if (result.llf.leave_peak_mean > 0.0) {
    result.leave_peak_gain =
        (result.s3.leave_peak_mean - result.llf.leave_peak_mean) /
        result.llf.leave_peak_mean;
  }
  if (result.llf.per_site_ci95 > 0.0) {
    result.errorbar_reduction =
        1.0 - result.s3.per_site_ci95 / result.llf.per_site_ci95;
  }
  return result;
}

}  // namespace s3::core
