// Trace persistence: CSV round-trip.
//
// The on-disk format mirrors the logged fields of §III-A one session
// per row. Used to export synthesized workloads for external tooling
// and to re-import captured traces. Errors are reported via a status
// struct (I/O failure is expected fallibility, not a caller bug).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "s3/trace/trace.h"

namespace s3::trace {

/// Writes a trace as CSV with a header row. Returns false on stream
/// failure.
bool write_csv(std::ostream& os, const Trace& trace);
bool write_csv_file(const std::string& path, const Trace& trace);

struct ReadResult {
  std::optional<Trace> trace;  ///< nullopt on parse failure
  std::string error;           ///< human-readable reason when nullopt
};

/// Parses a trace written by write_csv. Validates the header, field
/// arity and value ranges; a malformed row aborts the parse with a
/// row-numbered error message.
ReadResult read_csv(std::istream& is);
ReadResult read_csv_file(const std::string& path);

}  // namespace s3::trace
