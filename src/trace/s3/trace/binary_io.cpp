#include "s3/trace/binary_io.h"

#include <cstring>
#include <fstream>

namespace s3::trace {

namespace {

constexpr char kMagic[8] = {'S', '3', 'L', 'B', 'T', 'R', 'C', '1'};

// Packed on-disk record. Fixed layout, little-endian doubles/ints as
// the host writes them (the library targets one architecture family;
// a portable exporter would use the CSV format).
struct DiskRecord {
  std::uint32_t user;
  std::uint32_t ap;
  std::uint32_t building;
  std::uint32_t group;
  double pos_x;
  double pos_y;
  std::int64_t connect_s;
  std::int64_t disconnect_s;
  double traffic[apps::kNumCategories];
  double demand_mbps;
  std::uint64_t rate_seed;
};
static_assert(sizeof(DiskRecord) == 4 * 4 + 2 * 8 + 2 * 8 + 6 * 8 + 8 + 8,
              "DiskRecord must be packed without padding");

struct Header {
  char magic[8];
  std::uint64_t num_users;
  std::uint64_t num_days;
  std::uint64_t num_sessions;
};

}  // namespace

bool write_binary(std::ostream& os, const Trace& trace) {
  Header h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.num_users = trace.num_users();
  h.num_days = trace.num_days();
  h.num_sessions = trace.size();
  os.write(reinterpret_cast<const char*>(&h), sizeof(h));

  for (const SessionRecord& s : trace.sessions()) {
    DiskRecord r{};
    r.user = s.user;
    r.ap = s.ap;
    r.building = s.building;
    r.group = s.group;
    r.pos_x = s.pos.x;
    r.pos_y = s.pos.y;
    r.connect_s = s.connect.seconds();
    r.disconnect_s = s.disconnect.seconds();
    for (std::size_t c = 0; c < apps::kNumCategories; ++c) {
      r.traffic[c] = s.traffic[c];
    }
    r.demand_mbps = s.demand_mbps;
    r.rate_seed = s.rate_seed;
    os.write(reinterpret_cast<const char*>(&r), sizeof(r));
  }
  return static_cast<bool>(os);
}

bool write_binary_file(const std::string& path, const Trace& trace) {
  std::ofstream os(path, std::ios::binary);
  return os && write_binary(os, trace);
}

bool sniff_binary(std::istream& is) {
  char buf[8] = {};
  const auto pos = is.tellg();
  is.read(buf, sizeof(buf));
  const bool ok =
      is.gcount() == sizeof(buf) && std::memcmp(buf, kMagic, 8) == 0;
  is.clear();
  is.seekg(pos);
  return ok;
}

std::string_view to_string(BinaryReadError error) noexcept {
  switch (error) {
    case BinaryReadError::kNone:
      return "none";
    case BinaryReadError::kOpenFailed:
      return "open-failed";
    case BinaryReadError::kBadMagic:
      return "bad-magic";
    case BinaryReadError::kBadHeader:
      return "bad-header";
    case BinaryReadError::kSizeMismatch:
      return "size-mismatch";
    case BinaryReadError::kTruncatedRecord:
      return "truncated-record";
    case BinaryReadError::kBadRecord:
      return "bad-record";
  }
  return "?";
}

namespace {

BinaryReadResult fail(BinaryReadError code, std::string msg) {
  return {std::nullopt, std::move(msg), code};
}

/// Bytes left between the current position and the end of a seekable
/// stream; nullopt when the stream cannot be positioned (pipes).
std::optional<std::uint64_t> remaining_bytes(std::istream& is) {
  const std::istream::pos_type here = is.tellg();
  if (here == std::istream::pos_type(-1)) return std::nullopt;
  is.seekg(0, std::ios::end);
  const std::istream::pos_type end = is.tellg();
  is.seekg(here);
  if (end == std::istream::pos_type(-1) || !is) {
    is.clear();
    is.seekg(here);
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(end - here);
}

}  // namespace

BinaryReadResult read_binary(std::istream& is) {
  Header h{};
  is.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (is.gcount() != sizeof(h) ||
      std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    return fail(BinaryReadError::kBadMagic, "missing binary trace magic");
  }
  if (h.num_users == 0) {
    return fail(BinaryReadError::kBadHeader, "header: zero users");
  }
  // Guard against absurd session counts before reserving memory.
  if (h.num_sessions > (1ULL << 32)) {
    return fail(BinaryReadError::kBadHeader,
                "header: implausible session count");
  }
  // On a seekable stream, reject a header whose session count does not
  // fit the bytes actually present *before* reading records — a
  // corrupt count surfaces as one clear error instead of 96 bytes of
  // adjacent garbage parsed as a record.
  if (const std::optional<std::uint64_t> avail = remaining_bytes(is)) {
    const std::uint64_t need = h.num_sessions * sizeof(DiskRecord);
    if (*avail < need) {
      return fail(BinaryReadError::kSizeMismatch,
                  "truncated stream: header declares " +
                      std::to_string(h.num_sessions) + " sessions (" +
                      std::to_string(need) + " bytes) but only " +
                      std::to_string(*avail) + " bytes remain");
    }
  }

  std::vector<SessionRecord> sessions;
  sessions.reserve(static_cast<std::size_t>(h.num_sessions));
  for (std::uint64_t i = 0; i < h.num_sessions; ++i) {
    DiskRecord r{};
    is.read(reinterpret_cast<char*>(&r), sizeof(r));
    if (is.gcount() != sizeof(r)) {
      return fail(BinaryReadError::kTruncatedRecord,
                  "truncated at record " + std::to_string(i) + " of " +
                      std::to_string(h.num_sessions));
    }
    SessionRecord s;
    s.user = r.user;
    s.ap = r.ap;
    s.building = r.building;
    s.group = r.group;
    s.pos = {r.pos_x, r.pos_y};
    s.connect = util::SimTime(r.connect_s);
    s.disconnect = util::SimTime(r.disconnect_s);
    for (std::size_t c = 0; c < apps::kNumCategories; ++c) {
      s.traffic[c] = r.traffic[c];
    }
    s.demand_mbps = r.demand_mbps;
    s.rate_seed = r.rate_seed;
    if (s.user >= h.num_users) {
      return fail(BinaryReadError::kBadRecord,
                  "record " + std::to_string(i) + ": user id out of range");
    }
    if (s.connect >= s.disconnect) {
      return fail(BinaryReadError::kBadRecord,
                  "record " + std::to_string(i) + ": non-positive duration");
    }
    sessions.push_back(s);
  }
  return {Trace(static_cast<std::size_t>(h.num_users),
                static_cast<std::size_t>(h.num_days), std::move(sessions)),
          "", BinaryReadError::kNone};
}

BinaryReadResult read_binary_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return fail(BinaryReadError::kOpenFailed, "cannot open " + path);
  }
  return read_binary(is);
}

}  // namespace s3::trace
