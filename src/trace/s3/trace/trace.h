// WLAN usage trace: the record format of §III-A.
//
// A trace is a time-ordered list of association sessions. Each record
// carries exactly the fields the SJTU data center logs — user id, AP,
// connect/disconnect timestamps, served traffic per application realm —
// plus the generator-side context a simulation needs (station position,
// offered rate, ground-truth activity group).
//
// A trace may be a *workload* (ap == kInvalidAp: arrivals waiting for a
// selection policy to place them) or *assigned* (every ap valid: what a
// deployed network actually logged). The replay engine turns the former
// into the latter under a given policy.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "s3/apps/app_category.h"
#include "s3/util/error.h"
#include "s3/util/ids.h"
#include "s3/util/sim_time.h"
#include "s3/wlan/access_point.h"

namespace s3::trace {

struct SessionRecord {
  UserId user = kInvalidUser;
  /// AP serving the session; kInvalidAp in an unassigned workload.
  ApId ap = kInvalidAp;
  /// Building the station is in (fixes the controller domain).
  BuildingId building = 0;
  /// Station position for the radio model / candidate-set computation.
  wlan::Position pos;
  util::SimTime connect;
  util::SimTime disconnect;
  /// Served bytes per application realm over the whole session.
  apps::AppMix traffic{};
  /// Offered throughput w(u) in Mbit/s (Definition 1's demand).
  double demand_mbps = 0.0;
  /// Ground-truth social activity behind this session; kInvalidGroup
  /// for background (solitary) sessions. Never visible to policies.
  GroupId group = kInvalidGroup;
  /// Seed for deterministic within-session rate modulation.
  std::uint64_t rate_seed = 0;

  double duration_s() const noexcept {
    return static_cast<double>((disconnect - connect).seconds());
  }
  bool assigned() const noexcept { return ap != kInvalidAp; }
  bool overlaps(util::SimTime b, util::SimTime e) const noexcept {
    return connect < e && b < disconnect;
  }
};

/// An immutable, connect-time-ordered session log.
class Trace {
 public:
  Trace() = default;

  /// Validates and sorts the records by (connect, user).
  Trace(std::size_t num_users, std::size_t num_days,
        std::vector<SessionRecord> sessions);

  std::size_t num_users() const noexcept { return num_users_; }
  std::size_t num_days() const noexcept { return num_days_; }
  std::size_t size() const noexcept { return sessions_.size(); }
  bool empty() const noexcept { return sessions_.empty(); }

  std::span<const SessionRecord> sessions() const noexcept {
    return sessions_;
  }
  const SessionRecord& session(std::size_t i) const {
    S3_REQUIRE(i < sessions_.size(), "Trace: session index out of range");
    return sessions_[i];
  }

  /// True iff every session has a valid AP.
  bool fully_assigned() const noexcept;

  /// Session indices of one user, connect-ordered.
  std::vector<std::size_t> sessions_of_user(UserId u) const;

  /// Copy of this trace with per-session APs replaced (same order as
  /// sessions()); used by the replay engine to publish its placement.
  Trace with_assignments(std::span<const ApId> aps) const;

  /// Sub-trace restricted to sessions overlapping [begin, end); sessions
  /// are kept whole (timestamps are not clipped).
  Trace slice(util::SimTime begin, util::SimTime end) const;

  /// End of the last session (epoch if empty).
  util::SimTime end_time() const noexcept;

 private:
  std::size_t num_users_ = 0;
  std::size_t num_days_ = 0;
  std::vector<SessionRecord> sessions_;
};

}  // namespace s3::trace
