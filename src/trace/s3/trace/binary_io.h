// Binary trace persistence.
//
// The CSV format (io.h) is for interchange; this fixed-width
// little-endian binary format is for scale — a full SJTU-sized trace
// (~600k sessions) round-trips in tens of milliseconds and preserves
// every double bit-exactly. Layout: 16-byte header (magic,
// num_users, num_days, num_sessions) followed by packed 96-byte session
// records.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "s3/trace/trace.h"

namespace s3::trace {

/// Writes the binary form; returns false on stream failure.
bool write_binary(std::ostream& os, const Trace& trace);
bool write_binary_file(const std::string& path, const Trace& trace);

/// What went wrong while reading, beyond the human-readable message —
/// callers that react differently to corruption vs. I/O failure (e.g.
/// retry the open, quarantine the file) switch on this.
enum class BinaryReadError : std::uint8_t {
  kNone,             ///< success
  kOpenFailed,       ///< file could not be opened
  kBadMagic,         ///< stream does not start with the format magic
  kBadHeader,        ///< header fields are nonsensical (zero users, ...)
  kSizeMismatch,     ///< header session count inconsistent with stream size
  kTruncatedRecord,  ///< stream ended mid-record
  kBadRecord,        ///< a record's fields violate trace invariants
};

std::string_view to_string(BinaryReadError error) noexcept;

struct BinaryReadResult {
  std::optional<Trace> trace;
  std::string error;
  BinaryReadError code = BinaryReadError::kNone;
};

BinaryReadResult read_binary(std::istream& is);
BinaryReadResult read_binary_file(const std::string& path);

/// True if the stream/file starts with this format's magic (the stream
/// position is restored).
bool sniff_binary(std::istream& is);

}  // namespace s3::trace
