#include "s3/trace/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace s3::trace {

namespace {

constexpr double kSecondsPerDay = 86400.0;

double gaussian_bump(double h, double mu, double sigma, double amp) noexcept {
  const double z = (h - mu) / sigma;
  return amp * std::exp(-0.5 * z * z);
}

/// Clamps a point into a building's floor plan (1 m margin).
wlan::Position clamp_into(const wlan::BuildingConfig& b,
                          wlan::Position p) noexcept {
  p.x = std::clamp(p.x, b.origin.x + 1.0, b.origin.x + b.width_m - 1.0);
  p.y = std::clamp(p.y, b.origin.y + 1.0, b.origin.y + b.depth_m - 1.0);
  return p;
}

bool is_weekday(std::int64_t day) noexcept { return day % 7 < 5; }

}  // namespace

std::array<apps::AppMix, kNumArchetypes> archetype_centroids() {
  // Over (IM, P2P, music, email, video, web); rows sum to 1. Shapes
  // mirror the four Fig. 8 centroids.
  return {{
      {0.30, 0.05, 0.08, 0.12, 0.10, 0.35},  // type1: IM + web
      {0.05, 0.55, 0.05, 0.03, 0.17, 0.15},  // type2: P2P dominated
      {0.07, 0.10, 0.08, 0.05, 0.50, 0.20},  // type3: video streamer
      {0.08, 0.04, 0.06, 0.32, 0.10, 0.40},  // type4: email + web worker
  }};
}

std::array<double, kNumArchetypes> archetype_mean_rate_mbps() {
  // Heavy-tailed across types: a P2P seeder moves ~20x the bytes of a
  // messaging-centric user (the 2012 campus reality; §III-A's top-30
  // apps are dominated by P2P/video volume). This is what makes
  // station-count balancing a poor proxy for traffic balance.
  return {0.12, 2.00, 1.30, 0.10};
}

double diurnal_arrival_weight(std::int64_t second_of_day) noexcept {
  const double h = static_cast<double>(second_of_day) / 3600.0;
  // Near-zero at night, throughput peaks at 10:00–11:00 and 15:00–16:00
  // (§III-B), plus an evening shoulder that feeds the 21:00–22:00
  // leave-peak.
  double w = 0.02;
  w += gaussian_bump(h, 10.5, 1.1, 1.00);
  w += gaussian_bump(h, 12.4, 0.8, 0.60);  // canteen / dorm lunch surge
  w += gaussian_bump(h, 15.5, 1.3, 0.95);
  w += gaussian_bump(h, 19.8, 1.6, 0.70);
  w += gaussian_bump(h, 21.8, 0.9, 0.45);  // evening dorm activity
  if (h < 6.5) w *= 0.15;  // dormitory quiet hours
  return w;
}

namespace {

/// Pre-tabulated inverse-CDF sampler over 5-minute bins of a day.
class DiurnalSampler {
 public:
  DiurnalSampler() {
    constexpr std::size_t kBins = 24 * 12;
    cumulative_.resize(kBins);
    double acc = 0.0;
    for (std::size_t b = 0; b < kBins; ++b) {
      acc += diurnal_arrival_weight(static_cast<std::int64_t>(b) * 300 + 150);
      cumulative_[b] = acc;
    }
    total_ = acc;
  }

  /// Second-of-day sample.
  std::int64_t sample(util::Rng& rng) const {
    const double r = rng.uniform(0.0, total_);
    const auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), r);
    const auto bin = static_cast<std::int64_t>(it - cumulative_.begin());
    return bin * 300 + rng.uniform_int(0, 299);
  }

 private:
  std::vector<double> cumulative_;
  double total_ = 0.0;
};

struct UserModel {
  BuildingId home = 0;
  std::size_t archetype = 0;
  apps::AppMix base_profile{};  // normalized
  double mean_rate_mbps = 0.0;
};

}  // namespace

GeneratedTrace generate_campus_trace(const GeneratorConfig& cfg) {
  S3_REQUIRE(cfg.num_users >= 16, "generator: need at least 16 users");
  S3_REQUIRE(cfg.num_days >= 1, "generator: need at least one day");
  S3_REQUIRE(cfg.users_in_groups_fraction >= 0.0 &&
                 cfg.users_in_groups_fraction <= 1.0,
             "generator: users_in_groups_fraction outside [0,1]");
  S3_REQUIRE(cfg.group_type_coherence >= 0.0 && cfg.group_type_coherence <= 1.0,
             "generator: group_type_coherence outside [0,1]");
  S3_REQUIRE(cfg.min_group_size >= 2, "generator: min_group_size < 2");
  S3_REQUIRE(!cfg.class_start_hours.empty(),
             "generator: empty class schedule");

  wlan::Network network = wlan::make_campus(cfg.layout);
  util::Rng master(cfg.seed);
  util::Rng rng_population = master.fork();
  util::Rng rng_schedule = master.fork();
  util::Rng rng_traffic = master.fork();
  util::Rng rng_background = master.fork();

  const auto centroids = archetype_centroids();
  const auto mean_rates = archetype_mean_rate_mbps();

  // ---- Population ----------------------------------------------------
  GroundTruth truth;
  truth.user_archetype.resize(cfg.num_users);
  truth.user_groups.resize(cfg.num_users);
  std::vector<UserModel> users(cfg.num_users);

  // Home buildings: uniform.
  std::vector<std::vector<UserId>> building_grouped_pool(
      network.num_buildings());
  for (UserId u = 0; u < cfg.num_users; ++u) {
    users[u].home = static_cast<BuildingId>(
        rng_population.index(network.num_buildings()));
  }

  // Grouped users per building.
  for (UserId u = 0; u < cfg.num_users; ++u) {
    if (rng_population.bernoulli(cfg.users_in_groups_fraction)) {
      building_grouped_pool[users[u].home].push_back(u);
    }
  }

  // Partition each building's pool into groups.
  for (BuildingId b = 0; b < network.num_buildings(); ++b) {
    auto& pool = building_grouped_pool[b];
    rng_population.shuffle(pool);
    std::size_t cursor = 0;
    while (pool.size() - cursor >= cfg.min_group_size) {
      std::size_t size = static_cast<std::size_t>(
          rng_population.poisson(cfg.mean_group_size));
      size = std::max(size, cfg.min_group_size);
      size = std::min(size, pool.size() - cursor);
      if (pool.size() - cursor - size < cfg.min_group_size) {
        size = pool.size() - cursor;  // absorb the remainder
      }
      SocialGroupTruth g;
      g.id = static_cast<GroupId>(truth.groups.size());
      g.building = b;
      g.archetype = rng_population.index(kNumArchetypes);
      g.members.assign(pool.begin() + static_cast<std::ptrdiff_t>(cursor),
                       pool.begin() + static_cast<std::ptrdiff_t>(cursor + size));
      for (UserId m : g.members) truth.user_groups[m].push_back(g.id);
      truth.groups.push_back(std::move(g));
      cursor += size;
    }
  }

  // Archetypes: group members inherit the group archetype with
  // probability group_type_coherence; everyone else is uniform.
  for (UserId u = 0; u < cfg.num_users; ++u) {
    if (!truth.user_groups[u].empty()) {
      const SocialGroupTruth& g = truth.groups[truth.user_groups[u].front()];
      if (rng_population.bernoulli(cfg.group_type_coherence)) {
        users[u].archetype = g.archetype;
      } else {
        users[u].archetype = rng_population.index(kNumArchetypes);
      }
    } else {
      users[u].archetype = rng_population.index(kNumArchetypes);
    }
    truth.user_archetype[u] = users[u].archetype;

    // Base profile: Dirichlet around the archetype centroid.
    std::array<double, apps::kNumCategories> alpha{};
    for (std::size_t c = 0; c < apps::kNumCategories; ++c) {
      alpha[c] =
          cfg.profile_concentration * centroids[users[u].archetype][c] + 0.05;
    }
    const std::vector<double> p = rng_population.dirichlet(alpha);
    for (std::size_t c = 0; c < apps::kNumCategories; ++c) {
      users[u].base_profile[c] = p[c];
    }

    // Stable per-user mean rate (lognormal, mean = archetype mean).
    const double sigma = cfg.rate_sigma;
    users[u].mean_rate_mbps =
        cfg.rate_scale * mean_rates[users[u].archetype] *
        rng_population.lognormal(-0.5 * sigma * sigma, sigma);
  }

  // ---- Session emission ----------------------------------------------
  std::vector<SessionRecord> sessions;
  sessions.reserve(cfg.num_users * cfg.num_days * 2);
  util::SplitMix64 seeder(cfg.seed ^ 0x5e551045ULL);

  auto emit_session = [&](UserId u, BuildingId building, wlan::Position pos,
                          double t0_raw, double t1_raw, GroupId group) {
    if (t1_raw - t0_raw < 300.0) t1_raw = t0_raw + 300.0;  // 5-minute floor
    // Snap to whole seconds first so the stored traffic integral matches
    // the stored timestamps exactly.
    const auto t0 = static_cast<std::int64_t>(t0_raw);
    auto t1 = static_cast<std::int64_t>(t1_raw);
    if (t1 <= t0) t1 = t0 + 300;
    SessionRecord s;
    s.user = u;
    s.building = building;
    s.pos = clamp_into(network.building(building), pos);
    s.connect = util::SimTime(t0);
    s.disconnect = util::SimTime(t1);
    s.group = group;
    s.rate_seed = seeder.next();

    // Offered rate: per-session lognormal around the user's mean,
    // capped at the per-client effective-throughput ceiling.
    const double sigma = cfg.rate_sigma;
    s.demand_mbps = std::min(cfg.per_user_rate_cap_mbps,
                             users[u].mean_rate_mbps *
                                 rng_traffic.lognormal(-0.5 * sigma * sigma,
                                                       sigma));

    // Session application mix: Dirichlet around the base profile (the
    // per-day noise that makes short histories unreliable, Fig. 6).
    std::array<double, apps::kNumCategories> alpha{};
    for (std::size_t c = 0; c < apps::kNumCategories; ++c) {
      alpha[c] =
          cfg.session_concentration * users[u].base_profile[c] + 0.02;
    }
    const std::vector<double> mix = rng_traffic.dirichlet(alpha);
    const double megabits = s.demand_mbps * static_cast<double>(t1 - t0);
    for (std::size_t c = 0; c < apps::kNumCategories; ++c) {
      s.traffic[c] = mix[c] * megabits / 8.0 * 1.0e6;  // bytes
    }
    sessions.push_back(s);
  };

  // Fixed meeting rooms (lecture halls) per building.
  S3_REQUIRE(cfg.rooms_per_building >= 1, "generator: need at least one room");
  std::vector<std::vector<wlan::Position>> rooms(network.num_buildings());
  {
    util::Rng rng_rooms = master.fork();
    for (BuildingId b = 0; b < network.num_buildings(); ++b) {
      const wlan::BuildingConfig& bc = network.building(b);
      for (std::size_t r = 0; r < cfg.rooms_per_building; ++r) {
        rooms[b].push_back(
            {bc.origin.x + rng_rooms.uniform(5.0, bc.width_m - 5.0),
             bc.origin.y + rng_rooms.uniform(5.0, bc.depth_m - 5.0)});
      }
    }
  }

  // Group meetings.
  for (const SocialGroupTruth& g : truth.groups) {
    for (std::size_t day = 0; day < cfg.num_days; ++day) {
      const double factor =
          is_weekday(static_cast<std::int64_t>(day)) ? 1.0 : cfg.weekend_factor;
      for (int hour : cfg.class_start_hours) {
        if (!rng_schedule.bernoulli(std::min(1.0, cfg.meeting_prob * factor))) {
          continue;
        }
        const double start = static_cast<double>(day) * kSecondsPerDay +
                             hour * 3600.0 +
                             rng_schedule.uniform(-300.0, 300.0);
        const std::size_t dur_pick =
            rng_schedule.weighted_index(cfg.meeting_duration_weights);
        double duration =
            cfg.meeting_duration_minutes[dur_pick] * 60.0 +
            rng_schedule.normal(0.0, cfg.meeting_duration_jitter_s);
        duration = std::clamp(duration, 30.0 * 60.0, 4.0 * 3600.0);
        const double end = start + duration;
        // Meeting room: one of the building's lecture halls; members
        // sit nearby, so their candidate APs coincide.
        const wlan::Position room =
            rooms[g.building][rng_schedule.index(rooms[g.building].size())];
        for (UserId m : g.members) {
          if (!rng_schedule.bernoulli(cfg.attendance_prob)) continue;
          const double t0 =
              start + rng_schedule.normal(0.0, cfg.arrival_jitter_s);
          const double t1 =
              end + rng_schedule.normal(0.0, cfg.departure_jitter_s);
          const wlan::Position pos{room.x + rng_schedule.normal(0.0, 4.0),
                                   room.y + rng_schedule.normal(0.0, 4.0)};
          emit_session(m, g.building, pos, std::max(t0, 0.0), t1, g.id);
        }
      }
    }
  }

  // Background (solitary) sessions.
  const DiurnalSampler diurnal;
  for (UserId u = 0; u < cfg.num_users; ++u) {
    for (std::size_t day = 0; day < cfg.num_days; ++day) {
      const double factor =
          is_weekday(static_cast<std::int64_t>(day)) ? 1.0 : cfg.weekend_factor;
      const auto n = rng_background.poisson(
          cfg.background_sessions_per_user_per_day * factor);
      for (std::int64_t k = 0; k < n; ++k) {
        const std::int64_t sod = diurnal.sample(rng_background);
        const double t0 =
            static_cast<double>(day) * kSecondsPerDay + static_cast<double>(sod);
        const double duration = rng_background.lognormal(
            std::log(cfg.background_duration_median_s),
            cfg.background_duration_sigma);
        // 80% at home, else a uniformly random building (library, labs).
        const BuildingId where =
            rng_background.bernoulli(0.8)
                ? users[u].home
                : static_cast<BuildingId>(
                      rng_background.index(network.num_buildings()));
        const wlan::BuildingConfig& b = network.building(where);
        const wlan::Position pos{
            b.origin.x + rng_background.uniform(1.0, b.width_m - 1.0),
            b.origin.y + rng_background.uniform(1.0, b.depth_m - 1.0)};
        emit_session(u, where, pos, t0, t0 + duration, kInvalidGroup);
      }

      // Long-stay (dorm / library) sessions.
      const auto nl = rng_background.poisson(
          cfg.long_stay_sessions_per_user_per_day * factor);
      for (std::int64_t k = 0; k < nl; ++k) {
        const std::int64_t sod = diurnal.sample(rng_background);
        const double t0 =
            static_cast<double>(day) * kSecondsPerDay + static_cast<double>(sod);
        const double duration = rng_background.lognormal(
            std::log(cfg.long_stay_duration_median_s),
            cfg.long_stay_duration_sigma);
        const BuildingId where =
            rng_background.bernoulli(0.8)
                ? users[u].home
                : static_cast<BuildingId>(
                      rng_background.index(network.num_buildings()));
        const wlan::BuildingConfig& b = network.building(where);
        const wlan::Position pos{
            b.origin.x + rng_background.uniform(1.0, b.width_m - 1.0),
            b.origin.y + rng_background.uniform(1.0, b.depth_m - 1.0)};
        emit_session(u, where, pos, t0, t0 + duration, kInvalidGroup);
      }
    }
  }

  Trace workload(cfg.num_users, cfg.num_days, std::move(sessions));
  return GeneratedTrace{std::move(network), std::move(workload),
                        std::move(truth)};
}

}  // namespace s3::trace
