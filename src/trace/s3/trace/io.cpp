#include "s3/trace/io.h"

#include <array>
#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

namespace s3::trace {

namespace {

constexpr std::string_view kHeader =
    "user,ap,building,pos_x,pos_y,connect_s,disconnect_s,"
    "im_bytes,p2p_bytes,music_bytes,email_bytes,video_bytes,web_bytes,"
    "demand_mbps,group,rate_seed";

constexpr std::size_t kNumFields = 16;

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

template <typename T>
bool parse_number(std::string_view s, T& out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

// from_chars for double is not universally available for all formats;
// fall back to strtod via a bounded copy.
bool parse_double(std::string_view s, double& out) {
  char buf[64];
  if (s.size() >= sizeof(buf) || s.empty()) return false;
  std::copy(s.begin(), s.end(), buf);
  buf[s.size()] = '\0';
  char* end = nullptr;
  out = std::strtod(buf, &end);
  return end == buf + s.size();
}

}  // namespace

bool write_csv(std::ostream& os, const Trace& trace) {
  // Shortest round-trippable representation for doubles.
  os.precision(17);
  os << "# s3lb trace v1 users=" << trace.num_users()
     << " days=" << trace.num_days() << '\n';
  os << kHeader << '\n';
  for (const SessionRecord& s : trace.sessions()) {
    os << s.user << ',';
    if (s.ap == kInvalidAp) {
      os << "-,";
    } else {
      os << s.ap << ',';
    }
    os << s.building << ',' << s.pos.x << ',' << s.pos.y << ','
       << s.connect.seconds() << ',' << s.disconnect.seconds() << ',';
    for (double v : s.traffic) os << v << ',';
    os << s.demand_mbps << ',';
    if (s.group == kInvalidGroup) {
      os << "-,";
    } else {
      os << s.group << ',';
    }
    os << s.rate_seed << '\n';
  }
  return static_cast<bool>(os);
}

bool write_csv_file(const std::string& path, const Trace& trace) {
  std::ofstream os(path);
  return os && write_csv(os, trace);
}

ReadResult read_csv(std::istream& is) {
  std::string line;

  // Metadata comment line.
  if (!std::getline(is, line) || line.rfind("# s3lb trace v1", 0) != 0) {
    return {std::nullopt, "missing trace metadata line"};
  }
  std::size_t num_users = 0, num_days = 0;
  {
    std::istringstream meta(line);
    std::string tok;
    while (meta >> tok) {
      if (tok.rfind("users=", 0) == 0) {
        if (!parse_number(std::string_view(tok).substr(6), num_users)) {
          return {std::nullopt, "bad users= field"};
        }
      } else if (tok.rfind("days=", 0) == 0) {
        if (!parse_number(std::string_view(tok).substr(5), num_days)) {
          return {std::nullopt, "bad days= field"};
        }
      }
    }
  }
  if (num_users == 0) return {std::nullopt, "metadata: users missing or zero"};

  if (!std::getline(is, line) || line != kHeader) {
    return {std::nullopt, "missing or unexpected header row"};
  }

  std::vector<SessionRecord> sessions;
  std::size_t row = 2;
  while (std::getline(is, line)) {
    ++row;
    if (line.empty()) continue;
    const auto fields = split_fields(line);
    if (fields.size() != kNumFields) {
      return {std::nullopt,
              "row " + std::to_string(row) + ": expected " +
                  std::to_string(kNumFields) + " fields, got " +
                  std::to_string(fields.size())};
    }
    SessionRecord s;
    std::int64_t connect = 0, disconnect = 0;
    bool ok = parse_number(fields[0], s.user);
    if (fields[1] == "-") {
      s.ap = kInvalidAp;
    } else {
      ok = ok && parse_number(fields[1], s.ap);
    }
    ok = ok && parse_number(fields[2], s.building);
    ok = ok && parse_double(fields[3], s.pos.x);
    ok = ok && parse_double(fields[4], s.pos.y);
    ok = ok && parse_number(fields[5], connect);
    ok = ok && parse_number(fields[6], disconnect);
    for (std::size_t c = 0; ok && c < apps::kNumCategories; ++c) {
      ok = parse_double(fields[7 + c], s.traffic[c]);
    }
    ok = ok && parse_double(fields[13], s.demand_mbps);
    if (fields[14] == "-") {
      s.group = kInvalidGroup;
    } else {
      ok = ok && parse_number(fields[14], s.group);
    }
    ok = ok && parse_number(fields[15], s.rate_seed);
    if (!ok) {
      return {std::nullopt, "row " + std::to_string(row) + ": parse error"};
    }
    s.connect = util::SimTime(connect);
    s.disconnect = util::SimTime(disconnect);
    if (s.connect >= s.disconnect) {
      return {std::nullopt,
              "row " + std::to_string(row) + ": non-positive duration"};
    }
    if (s.user >= num_users) {
      return {std::nullopt,
              "row " + std::to_string(row) + ": user id out of range"};
    }
    sessions.push_back(s);
  }
  return {Trace(num_users, num_days, std::move(sessions)), ""};
}

ReadResult read_csv_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) return {std::nullopt, "cannot open " + path};
  return read_csv(is);
}

}  // namespace s3::trace
