#include "s3/trace/trace.h"

#include <algorithm>

namespace s3::trace {

Trace::Trace(std::size_t num_users, std::size_t num_days,
             std::vector<SessionRecord> sessions)
    : num_users_(num_users),
      num_days_(num_days),
      sessions_(std::move(sessions)) {
  S3_REQUIRE(num_users_ > 0, "Trace: num_users must be positive");
  for (const SessionRecord& s : sessions_) {
    S3_REQUIRE(s.user < num_users_, "Trace: user id out of range");
    S3_REQUIRE(s.connect < s.disconnect,
               "Trace: session must have positive duration");
    S3_REQUIRE(s.demand_mbps >= 0.0, "Trace: negative demand");
    for (double v : s.traffic) {
      S3_REQUIRE(v >= 0.0, "Trace: negative traffic volume");
    }
  }
  std::stable_sort(sessions_.begin(), sessions_.end(),
                   [](const SessionRecord& a, const SessionRecord& b) {
                     if (a.connect != b.connect) return a.connect < b.connect;
                     return a.user < b.user;
                   });
}

bool Trace::fully_assigned() const noexcept {
  return std::all_of(sessions_.begin(), sessions_.end(),
                     [](const SessionRecord& s) { return s.assigned(); });
}

std::vector<std::size_t> Trace::sessions_of_user(UserId u) const {
  S3_REQUIRE(u < num_users_, "Trace: user id out of range");
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i].user == u) out.push_back(i);
  }
  return out;
}

Trace Trace::with_assignments(std::span<const ApId> aps) const {
  S3_REQUIRE(aps.size() == sessions_.size(),
             "with_assignments: arity mismatch");
  std::vector<SessionRecord> copy = sessions_;
  for (std::size_t i = 0; i < copy.size(); ++i) copy[i].ap = aps[i];
  return Trace(num_users_, num_days_, std::move(copy));
}

Trace Trace::slice(util::SimTime begin, util::SimTime end) const {
  std::vector<SessionRecord> kept;
  for (const SessionRecord& s : sessions_) {
    if (s.overlaps(begin, end)) kept.push_back(s);
  }
  return Trace(num_users_, num_days_, std::move(kept));
}

util::SimTime Trace::end_time() const noexcept {
  util::SimTime t{};
  for (const SessionRecord& s : sessions_) t = std::max(t, s.disconnect);
  return t;
}

}  // namespace s3::trace
