// Calibrated synthetic campus-trace generator.
//
// Substitution for the proprietary SJTU trace (see DESIGN.md §2). The
// generator reproduces the statistical structure the paper measures:
//
//  * social groups (classes, meetings) with scheduled start/end times
//    drive co-coming and co-leaving — group members arrive within a few
//    minutes of a meeting's start and leave within a few minutes of its
//    end (§III-D-1, Fig. 5);
//  * group members share an application-profile archetype with high
//    probability, so pairs with similar profiles co-leave more often
//    (Table I);
//  * four application archetypes over the six realms, each user's daily
//    mix noisy around its archetype, so cumulative history converges to
//    the archetype over ~two weeks (Fig. 6's NMI plateau);
//  * diurnal background (solitary) sessions with network-throughput
//    peaks at 10:00–11:00 and 15:00–16:00 and group schedules whose
//    meeting ends concentrate leavings at 12:00–13:00, 16:00–17:50 and
//    21:00–22:00 (§V-C);
//  * weekday/weekend modulation over a multi-week horizon.
//
// The output is an *unassigned* workload: sessions carry arrival time,
// duration, building, position, offered rate and per-realm traffic, but
// no AP — the replay engine places them under a policy (LLF reproduces
// the "collected" trace, since LLF is what SJTU's controllers deploy).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "s3/apps/app_category.h"
#include "s3/trace/trace.h"
#include "s3/util/rng.h"
#include "s3/wlan/network.h"

namespace s3::trace {

/// Number of application-profile archetypes (the paper finds k = 4).
inline constexpr std::size_t kNumArchetypes = 4;

/// The four archetype centroids over (IM, P2P, music, email, video,
/// web). Shapes mirror Fig. 8: a messaging/web type, a P2P-dominated
/// type, a video-streaming type and an email/web "worker" type.
std::array<apps::AppMix, kNumArchetypes> archetype_centroids();

/// Mean offered rate (Mbit/s) per archetype; P2P/video types are heavy.
std::array<double, kNumArchetypes> archetype_mean_rate_mbps();

struct GeneratorConfig {
  std::uint64_t seed = 42;

  // Scale. Defaults are the laptop scale of DESIGN.md §7; the paper
  // scale is 12374 users / 22 buildings / ~15 APs per building.
  std::size_t num_users = 2400;
  std::size_t num_days = 28;
  wlan::CampusLayout layout{};

  // Social structure.
  double users_in_groups_fraction = 0.85;  ///< share of users in >=1 group
  double mean_group_size = 22.0;           ///< Poisson mean, min size 4
  std::size_t min_group_size = 4;
  /// Probability that a member's archetype equals the group's archetype
  /// (the source of Table I's diagonal dominance).
  double group_type_coherence = 0.8;

  // Group schedule: class periods start at these hours; each group holds
  /// each period's meeting with probability meeting_prob on weekdays.
  /// SJTU-style fixed class blocks (8:00, 10:00, 14:00, 16:00, 19:00);
  /// durations are drawn from the mixture below, so meeting *ends*
  /// stagger across groups while leavings still concentrate around the
  /// paper's leave-peak windows (12:00–13:00, 16:00–17:50, 21:00–22:00).
  std::vector<int> class_start_hours = {8, 10, 14, 16, 19};
  double meeting_prob = 0.30;
  /// Fixed meeting rooms per building (lecture halls): successive
  /// groups meet in the same few places, so their members share
  /// candidate APs — the interleaving opportunity S3 exploits.
  std::size_t rooms_per_building = 6;
  /// Duration mixture (minutes / weights). Heterogeneous durations are
  /// what makes social dispersion pay off: when groups sharing an area
  /// leave at different times, diversifying each AP's population keeps
  /// every departure's impact even across APs.
  std::vector<double> meeting_duration_minutes = {60, 90, 120, 150, 180};
  std::vector<double> meeting_duration_weights = {0.15, 0.20, 0.35, 0.20, 0.10};
  double meeting_duration_jitter_s = 6.0 * 60.0;
  double attendance_prob = 0.85;
  /// Co-coming/co-leaving tightness.
  double arrival_jitter_s = 150.0;
  double departure_jitter_s = 150.0;

  // Background (solitary) sessions.
  double background_sessions_per_user_per_day = 0.6;
  double background_duration_median_s = 45.0 * 60.0;
  double background_duration_sigma = 0.6;  ///< lognormal sigma
  /// Long-stay sessions (dorm / library): fewer, but spanning several
  /// hours, so the network keeps a placed population through the
  /// between-class lulls (the SJTU campus never empties at noon).
  double long_stay_sessions_per_user_per_day = 0.35;
  double long_stay_duration_median_s = 2.5 * 3600.0;
  double long_stay_duration_sigma = 0.5;

  // Traffic model.
  /// Dirichlet concentration for a user's *base* profile around its
  /// archetype centroid (higher = tighter).
  double profile_concentration = 80.0;
  /// Dirichlet concentration for the *per-session* mix around the
  /// user's base profile (lower = noisier days; drives Fig. 6).
  double session_concentration = 6.0;
  double rate_sigma = 0.8;  ///< lognormal sigma around archetype mean rate
  /// Global multiplier on archetype mean rates: lets experiments scale
  /// the population up while keeping the offered load constant.
  double rate_scale = 1.0;
  /// Per-client effective-throughput ceiling (Mbit/s). A 2012-era
  /// 802.11g client tops out well below AP capacity; without this cap
  /// a single lognormal-tail "whale" pins an AP and floors the balance
  /// index for every policy alike.
  double per_user_rate_cap_mbps = 6.0;

  // Calendar.
  double weekend_factor = 0.35;  ///< activity multiplier on days 5,6 mod 7
};

/// Ground truth the generator knows but policies must never see.
struct SocialGroupTruth {
  GroupId id = kInvalidGroup;
  BuildingId building = 0;
  std::size_t archetype = 0;
  std::vector<UserId> members;
};

struct GroundTruth {
  std::vector<SocialGroupTruth> groups;
  /// Archetype per user (all users, grouped or not).
  std::vector<std::size_t> user_archetype;
  /// Groups a user belongs to.
  std::vector<std::vector<GroupId>> user_groups;
};

struct GeneratedTrace {
  wlan::Network network;
  Trace workload;  ///< unassigned sessions
  GroundTruth truth;
};

/// Runs the generator. Deterministic in config.seed.
GeneratedTrace generate_campus_trace(const GeneratorConfig& config);

/// Diurnal arrival weight for background sessions at second-of-day s:
/// bimodal with maxima in 10:00–11:00 and 15:00–16:00, near-zero at
/// night. Exposed for tests and for the workload-shape bench.
double diurnal_arrival_weight(std::int64_t second_of_day) noexcept;

}  // namespace s3::trace
