// One primary + N backup controllers for a single domain.
//
// The shape is MongoDB's replication/topology coordinator scaled down
// to our deterministic simulation world: a primary ControllerEngine
// applies domain events and appends one record per step to an
// append-only EventLog; backups replay the log suffix at logical-clock
// heartbeat boundaries; when a controller-outage window opens, the
// primary crashes and the surviving replica with the highest (term,
// applied-records) pair — seeded SplitMix64 tie-break — is promoted,
// catches up by replaying the remaining suffix, and provably reaches a
// bit-identical state (check::validate_replica_convergence against the
// crashed primary's final snapshot). The crashed replica rejoins as a
// backup when its window closes, catching up the same way.
//
// Everything is a pure function of (workload, plan, seeds): no wall
// clock enters any decision, so a replicated replay is reproducible
// across runs and thread counts — the property that lets a backup take
// over without dropping a single in-flight session.
//
// With zero backups the domain runs *headless* through each outage:
// the pending batch is discarded, arrivals inside the window are
// dropped (counted in stats().dropped_sessions), retries are parked
// until the restart, and only physical events (departures, AP fault
// flips) keep being applied. The restarted controller resumes from its
// pre-crash state with a bumped term.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "s3/fault/fault_injector.h"
#include "s3/fault/replica_snapshot.h"
#include "s3/repl/event_log.h"
#include "s3/runtime/controller_engine.h"
#include "s3/sim/selector.h"
#include "s3/trace/trace.h"
#include "s3/wlan/network.h"

namespace s3::repl {

struct ReplicationConfig {
  /// Backup replicas per domain (0 = headless failover handling).
  std::size_t backups = 1;
  /// Logical-clock heartbeat: backups replay the log suffix whenever
  /// the primary's step time crosses a multiple of this period.
  std::int64_t heartbeat_s = 300;
  /// Seed of the deterministic election tie-break.
  std::uint64_t election_seed = 1;
};

/// One promotion (or headless restart) of a domain controller.
struct FailoverEvent {
  ControllerId domain = kInvalidController;
  util::SimTime when;
  /// Replica index promoted to primary (== the crashed index for a
  /// headless restart).
  std::size_t promoted_replica = 0;
  std::uint64_t new_term = 0;
  /// Log records the promoted backup replayed to catch up.
  std::uint64_t records_replayed = 0;
  /// Wall-clock catch-up cost (measurement only; no decision reads it).
  std::uint64_t catchup_wall_ns = 0;
  /// Whether validate_replica_convergence found the promoted replica
  /// bit-identical to the crashed primary. Always true for a correct
  /// build; recorded so benches and tests can assert it.
  bool converged = true;
  /// Headless restart (no backup existed) rather than a promotion.
  bool headless = false;
};

/// Replication-layer accounting, merged across domains by the driver.
struct ReplStats {
  std::size_t replicas = 0;        ///< engines built (1 + backups), max over domains
  std::size_t failovers = 0;       ///< promotions of a backup
  std::size_t headless_windows = 0;
  std::size_t rejoins = 0;         ///< crashed replicas re-joined as backups
  std::size_t heartbeats = 0;
  std::uint64_t log_records = 0;
  std::uint64_t catchup_records = 0;  ///< summed over promotions + rejoins
  std::uint64_t catchup_wall_ns = 0;
  std::uint64_t final_term = 0;       ///< max over domains
};

class FailoverLedger;

class ReplicationGroup {
 public:
  /// Mirrors ControllerEngine's constructor contract; `factory` is
  /// invoked once per replica (deterministic factories produce
  /// identical instances — required). All references must outlive the
  /// group.
  ReplicationGroup(const wlan::Network& net, const trace::Trace& workload,
                   ControllerId domain, std::vector<std::size_t> sessions,
                   const sim::SelectorFactory& factory,
                   const sim::ReplayConfig& config,
                   const fault::FaultInjector& injector,
                   const fault::RecoveryPolicy& recovery,
                   const ReplicationConfig& repl);

  /// Walks the domain's whole event stream, crashing/promoting/
  /// rejoining controllers per the injector's outage windows, then
  /// finalizes the acting primary.
  void run();

  ControllerId domain() const noexcept { return domain_; }

  /// Acting primary's replay stats (valid after run()).
  const sim::ReplayStats& stats() const;

  /// Copies the acting primary's domain-session placements into the
  /// global assignment vector.
  void publish_assignment(std::span<ApId> global) const;

  const ReplStats& repl_stats() const noexcept { return repl_stats_; }
  std::span<const FailoverEvent> failovers() const noexcept {
    return failovers_;
  }

  /// Streams every failover event into `ledger` (in addition to the
  /// local failovers() list) as it happens, so a driver can observe
  /// promotions across domains while groups are still running. Must be
  /// set before run(); the ledger must outlive it.
  void set_failover_ledger(FailoverLedger* ledger) noexcept {
    ledger_ = ledger;
  }
  const EventLog& log() const noexcept { return log_; }

  /// Acting primary's snapshot with term/applied filled in.
  fault::ReplicaSnapshot snapshot() const;

 private:
  struct Replica {
    std::unique_ptr<sim::ApSelector> policy;
    std::vector<ApId> assignment;
    std::unique_ptr<runtime::ControllerEngine> engine;
    std::uint64_t term = 1;
    std::uint64_t applied = 0;  ///< log records applied
    bool alive = true;
  };

  Replica& primary() noexcept { return replicas_[primary_index_]; }
  const Replica& primary() const noexcept { return replicas_[primary_index_]; }

  std::uint64_t max_term() const noexcept;
  /// Deterministic election among alive replicas: highest term, then
  /// longest applied log, then seeded SplitMix64 tie-break.
  std::size_t elect() const;
  /// Replays the log suffix into `r`; digests are verified per record.
  /// Returns the number of records replayed.
  std::uint64_t catch_up(Replica& r);
  /// Appends a record for a step the primary just applied and advances
  /// its position.
  void append_primary(RecordKind kind, util::SimTime when,
                      std::uint64_t digest);
  /// Heartbeat bookkeeping after the primary applied a step at `when`.
  void maybe_heartbeat(util::SimTime when);
  /// Crash of the acting primary at `window.begin`: promotion (backups
  /// exist) or headless walk of the window (none do).
  void handle_outage(const util::TimeInterval& window);
  void run_headless(const util::TimeInterval& window);
  /// Revives a crashed replica once simulation time passed its window
  /// end; it catches up from the log and rejoins as a backup.
  void handle_restarts(util::SimTime now, bool force);

  ControllerId domain_;
  const fault::FaultInjector* injector_;
  ReplicationConfig repl_config_;
  std::vector<std::size_t> sessions_;  // global indices, connect order
  std::vector<Replica> replicas_;
  std::size_t primary_index_ = 0;
  EventLog log_;
  util::SimTime next_heartbeat_;
  /// (replica index, restart time) of crashed replicas awaiting revival.
  struct PendingRestart {
    std::size_t replica;
    util::SimTime at;
  };
  /// Appends to failovers_ and mirrors the event to ledger_ (if set).
  void record_failover(const FailoverEvent& ev);

  std::vector<PendingRestart> pending_restarts_;
  std::vector<FailoverEvent> failovers_;
  FailoverLedger* ledger_ = nullptr;
  ReplStats repl_stats_;
  bool finalized_ = false;
};

}  // namespace s3::repl
