// One primary + N backup controllers for a single domain.
//
// The shape is MongoDB's replication/topology coordinator scaled down
// to our deterministic simulation world: a primary ControllerEngine
// applies domain events and appends one record per step to an
// append-only EventLog; backups replay the log suffix at logical-clock
// heartbeat boundaries; when a controller-outage window opens, the
// primary crashes and the surviving replica with the highest (term,
// applied-records) pair — seeded SplitMix64 tie-break — is promoted,
// catches up by replaying the remaining suffix, and provably reaches a
// bit-identical state (check::validate_replica_convergence against the
// crashed primary's final snapshot). The crashed replica rejoins as a
// backup when its window closes, catching up the same way.
//
// Snapshots bound the catch-up bill: every `snapshot_every` replayable
// records the primary freezes its whole engine state into the log
// (EngineCheckpoint behind a kSnapshot record), so a replica that
// rejoins far behind installs the latest checkpoint and replays only
// the suffix after it — work proportional to the snapshot interval,
// never the log length. With `truncate` on, any prefix that every live
// replica has applied (and that precedes the latest snapshot) is
// dropped, keeping the log's memory bounded; the truncation invariant
// — no replica can ever need a truncated record — is asserted by
// check::validate_log_truncation before every cut. A corrupted log
// record (digest mismatch on replay) is rejected and counted, and the
// rejecting replica resyncs from the first snapshot past the bad
// record instead of diverging.
//
// Cross-domain failover: a `controller-loss` window takes out the
// whole replica set at once. The first alive neighbor controller in
// deterministic order ((domain + k) mod C for k = 1, 2, ...) adopts
// the orphaned domain, seeding from the last replicated snapshot (or
// the full log when none exists yet) and provably converging on the
// lost primary's exact state; at the window end the revived originals
// elect a leader, catch up, and the adopter hands the domain back.
//
// Everything is a pure function of (workload, plan, seeds): no wall
// clock enters any decision, so a replicated replay is reproducible
// across runs and thread counts — the property that lets a backup take
// over without dropping a single in-flight session.
//
// With zero backups the domain runs *headless* through each outage:
// the pending batch is discarded, arrivals inside the window are
// dropped (counted in stats().dropped_sessions), retries are parked
// until the restart, and only physical events (departures, AP fault
// flips) keep being applied. The restarted controller resumes from its
// pre-crash state with a bumped term.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "s3/fault/fault_injector.h"
#include "s3/fault/replica_snapshot.h"
#include "s3/repl/event_log.h"
#include "s3/runtime/controller_engine.h"
#include "s3/sim/selector.h"
#include "s3/trace/trace.h"
#include "s3/wlan/network.h"

namespace s3::repl {

/// "Tamper with nothing" sentinel for ReplicationConfig::corrupt_record.
inline constexpr std::uint64_t kNoTamper = static_cast<std::uint64_t>(-1);

struct ReplicationConfig {
  /// Backup replicas per domain (0 = headless failover handling).
  std::size_t backups = 1;
  /// Logical-clock heartbeat: backups replay the log suffix whenever
  /// the primary's step time crosses a multiple of this period.
  std::int64_t heartbeat_s = 300;
  /// Seed of the deterministic election tie-break.
  std::uint64_t election_seed = 1;
  /// Replayable records between engine-state snapshots in the event
  /// log (0 = snapshots disabled). Also the elective-install
  /// threshold: a replica more than one interval behind the latest
  /// snapshot installs it instead of replaying, which bounds any
  /// catch-up by ~2x this interval regardless of log length.
  std::uint64_t snapshot_every = 0;
  /// Drop log prefixes every live replica has applied (and that
  /// precede the latest snapshot). Requires snapshot_every > 0 — a
  /// replica behind the truncated base re-seeds from a snapshot.
  bool truncate = false;
  /// Test-only fault: flip the digest bits of this one log record at
  /// append time, simulating storage corruption. Replicas must reject
  /// the record and resync from a snapshot. kNoTamper = off.
  std::uint64_t corrupt_record = kNoTamper;
};

/// What kind of takeover a FailoverEvent describes.
enum class FailoverKind : std::uint8_t {
  kPromotion = 0,  ///< a local backup took over from a crashed primary
  kHeadless,       ///< nobody to promote; the domain rode the window out
  kAdoption,       ///< a neighbor-domain controller adopted the domain
  kHandback,       ///< the adopter returned the domain to a revived original
};

/// One takeover of a domain controller.
struct FailoverEvent {
  ControllerId domain = kInvalidController;
  util::SimTime when;
  /// Replica index promoted to primary (== the crashed index for a
  /// headless restart; the adopter's transient index for an adoption).
  std::size_t promoted_replica = 0;
  std::uint64_t new_term = 0;
  /// Log records the promoted backup replayed to catch up.
  std::uint64_t records_replayed = 0;
  /// Wall-clock catch-up cost (measurement only; no decision reads it).
  std::uint64_t catchup_wall_ns = 0;
  /// Whether validate_replica_convergence found the promoted replica
  /// bit-identical to the crashed primary. Always true for a correct
  /// build; recorded so benches and tests can assert it.
  bool converged = true;
  /// Headless restart (no backup existed) rather than a promotion.
  /// Kept alongside `kind` for older callers; == (kind == kHeadless).
  bool headless = false;
  FailoverKind kind = FailoverKind::kPromotion;
  /// Neighbor controller serving the domain (adoption/hand-back only).
  ControllerId adopter = kInvalidController;
  /// Catch-up started from an installed snapshot instead of replaying
  /// the whole remaining suffix.
  bool snapshot_install = false;
};

/// Replication-layer accounting, merged across domains by the driver.
struct ReplStats {
  std::size_t replicas = 0;        ///< engines built (1 + backups), max over domains
  std::size_t failovers = 0;       ///< promotions of a backup
  std::size_t headless_windows = 0;
  std::size_t rejoins = 0;         ///< crashed replicas re-joined as backups
  std::size_t heartbeats = 0;
  std::uint64_t log_records = 0;
  std::uint64_t catchup_records = 0;  ///< summed over promotions + rejoins
  std::uint64_t catchup_wall_ns = 0;
  std::uint64_t final_term = 0;       ///< max over domains
  std::uint64_t snapshots = 0;          ///< kSnapshot records appended
  std::uint64_t snapshot_installs = 0;  ///< catch-ups seeded from a snapshot
  std::uint64_t truncated_records = 0;  ///< records dropped from log prefixes
  std::uint64_t live_log_records = 0;   ///< records still retained at the end
  std::size_t adoptions = 0;   ///< whole-replica-set losses absorbed by a neighbor
  std::size_t handbacks = 0;   ///< domains returned to revived originals
  std::uint64_t digest_mismatches = 0;  ///< corrupted records rejected on replay
  std::uint64_t resyncs = 0;            ///< snapshot resyncs after a rejection
  /// Largest single catch-up (promotion, rejoin, adoption or sweep) —
  /// with snapshots at interval k this stays <= ~2k + control records
  /// however long the log grows; the torture harness asserts it.
  std::uint64_t max_catchup_records = 0;
};

class FailoverLedger;

class ReplicationGroup {
 public:
  /// Mirrors ControllerEngine's constructor contract; `factory` is
  /// invoked once per replica (deterministic factories produce
  /// identical instances — required). All references must outlive the
  /// group.
  ReplicationGroup(const wlan::Network& net, const trace::Trace& workload,
                   ControllerId domain, std::vector<std::size_t> sessions,
                   const sim::SelectorFactory& factory,
                   const sim::ReplayConfig& config,
                   const fault::FaultInjector& injector,
                   const fault::RecoveryPolicy& recovery,
                   const ReplicationConfig& repl);

  /// Walks the domain's whole event stream, crashing/promoting/
  /// rejoining controllers per the injector's outage windows and
  /// adopting out/handing back across domains per its loss windows,
  /// then finalizes the acting primary.
  void run();

  ControllerId domain() const noexcept { return domain_; }

  /// Acting primary's replay stats (valid after run()).
  const sim::ReplayStats& stats() const;

  /// Copies the acting primary's domain-session placements into the
  /// global assignment vector.
  void publish_assignment(std::span<ApId> global) const;

  const ReplStats& repl_stats() const noexcept { return repl_stats_; }
  std::span<const FailoverEvent> failovers() const noexcept {
    return failovers_;
  }

  /// Streams every failover event into `ledger` (in addition to the
  /// local failovers() list) as it happens, so a driver can observe
  /// promotions across domains while groups are still running. Must be
  /// set before run(); the ledger must outlive it.
  void set_failover_ledger(FailoverLedger* ledger) noexcept {
    ledger_ = ledger;
  }
  const EventLog& log() const noexcept { return log_; }

  /// Acting primary's snapshot with term/applied filled in.
  fault::ReplicaSnapshot snapshot() const;

 private:
  struct Replica {
    std::unique_ptr<sim::ApSelector> policy;
    std::vector<ApId> assignment;
    std::unique_ptr<runtime::ControllerEngine> engine;
    std::uint64_t term = 1;
    std::uint64_t applied = 0;  ///< log records applied
    bool alive = true;
    /// Rejected a corrupted record; must not replay again until
    /// re-seeded from a snapshot anchored past `resync_floor`.
    bool needs_resync = false;
    std::uint64_t resync_floor = 0;
  };

  Replica& primary() noexcept { return replicas_[primary_index_]; }
  const Replica& primary() const noexcept { return replicas_[primary_index_]; }

  std::uint64_t max_term() const noexcept;
  /// Deterministic election among alive replicas: highest term, then
  /// longest applied log, then seeded SplitMix64 tie-break. `exclude`
  /// skips one index (the adopter, during a hand-back).
  std::size_t elect(std::size_t exclude) const;
  /// Brings `r` to the log head: seeds from a snapshot when forced
  /// (behind the truncated base, or pending resync) or when more than
  /// one snapshot interval behind, then replays the remaining suffix
  /// with per-record digest verification. A verification failure
  /// rejects the record, counts it, and re-seeds from the first
  /// snapshot past it (or stalls until one exists). Returns the number
  /// of records replayed.
  std::uint64_t catch_up(Replica& r);
  /// Replaces `r`'s engine/policy/assignment with fresh clones of the
  /// checkpoint and moves its position to the snapshot's anchor.
  void install_snapshot(Replica& r, const SnapshotEntry& entry);
  /// Appends a record for a step the primary just applied and advances
  /// its position.
  void append_primary(RecordKind kind, util::SimTime when,
                      std::uint64_t digest);
  /// Freezes the primary into a kSnapshot record now.
  void append_snapshot(util::SimTime when);
  /// Snapshot-interval bookkeeping after an appended replayable record.
  void maybe_snapshot(util::SimTime when);
  /// Drops the log prefix all live replicas are past (never beyond the
  /// latest snapshot), gated by check::validate_log_truncation.
  void maybe_truncate();
  /// Heartbeat bookkeeping after the primary applied a step at `when`.
  void maybe_heartbeat(util::SimTime when);
  /// Crash of the acting primary at `window.begin`: promotion (backups
  /// exist) or headless walk of the window (none do).
  void handle_outage(const util::TimeInterval& window);
  /// Loss of the whole replica set: a deterministic neighbor controller
  /// adopts the domain from the latest snapshot (headless walk when no
  /// neighbor is alive).
  void handle_loss(const util::TimeInterval& window);
  /// First alive controller in (domain + k) mod C order, or
  /// kInvalidController when every other controller is down too.
  ControllerId choose_adopter(util::SimTime at) const;
  /// Revived originals elect a leader and the adopter steps down.
  void handle_handback();
  void run_headless(const util::TimeInterval& window);
  /// Revives a crashed replica once simulation time passed its window
  /// end; it catches up from the log and rejoins as a backup.
  void handle_restarts(util::SimTime now, bool force);
  /// Books one finished catch-up into the stats.
  void account_catchup(std::uint64_t replayed, std::uint64_t wall_ns);

  const wlan::Network* net_;
  const trace::Trace* workload_;
  const sim::SelectorFactory* factory_;
  sim::ReplayConfig replay_config_;
  fault::RecoveryPolicy recovery_;
  ControllerId domain_;
  const fault::FaultInjector* injector_;
  ReplicationConfig repl_config_;
  std::vector<std::size_t> sessions_;  // global indices, connect order
  std::vector<Replica> replicas_;
  std::size_t primary_index_ = 0;
  EventLog log_;
  util::SimTime next_heartbeat_;
  std::uint64_t replayable_since_snapshot_ = 0;
  /// Adoption in progress: the transient adopter replica is
  /// replicas_.back() and hands back at the loss window's end.
  bool adopter_active_ = false;
  ControllerId adopter_controller_ = kInvalidController;
  util::SimTime handback_at_;
  /// (replica index, restart time) of crashed replicas awaiting revival.
  struct PendingRestart {
    std::size_t replica;
    util::SimTime at;
  };
  /// Appends to failovers_ and mirrors the event to ledger_ (if set).
  void record_failover(const FailoverEvent& ev);

  std::vector<PendingRestart> pending_restarts_;
  std::vector<FailoverEvent> failovers_;
  FailoverLedger* ledger_ = nullptr;
  ReplStats repl_stats_;
  bool finalized_ = false;
};

}  // namespace s3::repl
