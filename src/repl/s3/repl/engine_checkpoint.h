// Deep-frozen controller state for snapshot-based catch-up.
//
// A checkpoint is a *clone*, not a serialization: the engine's future
// behavior depends on state that logical fields cannot reproduce —
// float accumulation order in the load tracker, unordered-container
// iteration history in the policy — so the only way to restart a
// replica bit-identically is a member-wise copy. The checkpoint owns
// its own policy clone and assignment buffer, with the engine copy's
// internal references rebound onto them, so it stays valid however the
// source replica evolves (or dies) afterwards.
//
// Installing a checkpoint clones it *again* (clone_policy /
// assignment_copy / ControllerEngine rebind copy), so one checkpoint in
// the event log can seed any number of rejoining replicas.
//
// Deliberately lock-free: checkpoints are created and installed by the
// single thread walking their ReplicationGroup, like the EventLog that
// stores them.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "s3/fault/replica_snapshot.h"
#include "s3/runtime/controller_engine.h"
#include "s3/sim/selector.h"
#include "s3/util/error.h"

namespace s3::repl {

class EngineCheckpoint {
 public:
  /// Captures `engine` (whose policy is `policy`, writing into
  /// `assignment`). Requires the policy to support clone(); callers
  /// gate snapshotting on that.
  EngineCheckpoint(const runtime::ControllerEngine& engine,
                   const sim::ApSelector& policy,
                   std::span<const ApId> assignment)
      : policy_(policy.clone()),
        assignment_(assignment.begin(), assignment.end()),
        state_(engine.snapshot()) {
    S3_REQUIRE(policy_ != nullptr,
               "EngineCheckpoint: policy does not support clone() — "
               "snapshot-based catch-up is unavailable for it");
    engine_ = std::make_unique<runtime::ControllerEngine>(
        engine, *policy_, std::span<ApId>(assignment_));
  }

  /// Logical state at capture (term/applied_records left to the
  /// replication layer); digest() of this is what the kSnapshot log
  /// record carries.
  const fault::ReplicaSnapshot& state() const noexcept { return state_; }

  /// Fresh copies for a replica install; the caller owns all three and
  /// must keep policy + assignment alive as long as the engine.
  std::unique_ptr<sim::ApSelector> clone_policy() const {
    std::unique_ptr<sim::ApSelector> p = policy_->clone();
    S3_ASSERT(p != nullptr, "EngineCheckpoint: checkpointed policy lost clone");
    return p;
  }
  std::vector<ApId> assignment_copy() const { return assignment_; }
  const runtime::ControllerEngine& engine() const noexcept { return *engine_; }

 private:
  std::unique_ptr<sim::ApSelector> policy_;
  std::vector<ApId> assignment_;
  std::unique_ptr<runtime::ControllerEngine> engine_;
  fault::ReplicaSnapshot state_;
};

}  // namespace s3::repl
