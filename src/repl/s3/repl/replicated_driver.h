// Sharded replay driver with replicated controllers.
//
// Same decomposition as runtime::ReplayDriver — one controller domain
// per thread-pool task — but each domain is a ReplicationGroup (one
// primary + N backup engines) instead of a bare engine, so the replay
// survives the injector's controller-outage windows: with backups the
// run is lossless (bit-identical to an outage-free run), without them
// the domain rides each window headless and the drops are counted.
//
// Results stay thread-count invariant: groups share no mutable state,
// the injector is immutable, and each group's election/catch-up logic
// is a pure function of (workload, plan, seeds).
#pragma once

#include "s3/repl/replication_group.h"

namespace s3::repl {

struct ReplicatedDriverConfig {
  sim::ReplayConfig replay{};
  /// Worker threads; 0 = hardware_concurrency(). Result-invariant.
  unsigned threads = 0;
  /// Fault schedule — required (a replicated replay without an injector
  /// has nothing to fail over from; use runtime::ReplayDriver instead).
  /// Must outlive the driver.
  const fault::FaultInjector* injector = nullptr;
  fault::RecoveryPolicy recovery{};
  ReplicationConfig repl{};
};

struct ReplicatedReplayResult {
  sim::ReplayResult result;
  /// Replication accounting merged across domains (replicas/final_term
  /// take the max, everything else sums).
  ReplStats repl;
  /// Every promotion and headless restart, sorted by (time, domain).
  std::vector<FailoverEvent> failovers;
};

class ReplicatedReplayDriver {
 public:
  /// `net` and `config.injector` must outlive the driver.
  explicit ReplicatedReplayDriver(const wlan::Network& net,
                                  ReplicatedDriverConfig config);

  /// Replicated sharded replay: one ReplicationGroup per non-empty
  /// domain, built in controller order, run on the thread pool.
  ReplicatedReplayResult run(const trace::Trace& workload,
                             const sim::SelectorFactory& factory) const;

  unsigned effective_threads() const noexcept;

  const ReplicatedDriverConfig& config() const noexcept { return config_; }

 private:
  const wlan::Network* net_;
  ReplicatedDriverConfig config_;
};

}  // namespace s3::repl
