// Append-only replication log of controller-engine steps.
//
// The primary appends one record per step it applies: the step kind,
// its simulation time, the replication term it was written under, and
// the engine's post-step state digest. A backup catches up by replaying
// the suffix it has not applied yet — engines are deterministic, so
// re-applying the same kinds in the same order reproduces the primary's
// state bit-for-bit, and the stored digest lets the backup verify that
// claim record by record instead of trusting it.
//
// The log also records control events (crash, promotion, restart,
// adoption, hand-back) and the headless-mode actions of an unreplicated
// controller (dropped arrivals/batches, postponed retries); those make
// the log a complete failover audit trail but only engine-step kinds
// are replayed.
//
// Snapshots and truncation: a kSnapshot record freezes the primary's
// whole engine state (EngineCheckpoint) at its log position, so a
// replica that rejoins far behind installs the latest snapshot and
// replays only the suffix after it — catch-up bounded by the snapshot
// interval, not the log length. Once every live replica is past a
// snapshot, the prefix before it can be truncated: indices stay global
// (a record keeps the index it was appended at), `base()` names the
// first record still retained, and suffix() refuses to hand out
// anything before it — by the truncation invariant
// (check::validate_log_truncation) no replica can ever need those.
//
// Deliberately lock-free: a log belongs to one ReplicationGroup, whose
// whole walk runs on a single worker thread; readers (the driver,
// tests) only look after the join. Cross-domain observations that do
// need concurrency go through FailoverLedger instead.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "s3/repl/engine_checkpoint.h"
#include "s3/runtime/controller_engine.h"
#include "s3/util/error.h"
#include "s3/util/sim_time.h"

namespace s3::repl {

enum class RecordKind : std::uint8_t {
  // Engine steps — replayed by backups, 1:1 with ControllerEngine::StepKind.
  kFault = 0,
  kDeparture,
  kArrival,
  kRetries,
  kFlush,
  // Headless-mode actions (controller down, nobody to promote).
  kDroppedArrival,
  kDroppedBatch,
  kPostponedRetries,
  // Control events — audit trail only, never replayed.
  kCrash,
  kPromotion,
  kRestart,
  kSnapshot,   ///< full engine checkpoint frozen at this position
  kAdoption,   ///< a neighbor-domain controller adopted the orphaned domain
  kHandback,   ///< the adopter handed the domain back to a revived original
};

/// True for kinds a backup replays through ControllerEngine.
constexpr bool is_engine_step(RecordKind kind) noexcept {
  return kind <= RecordKind::kFlush;
}

/// True for the headless-mode kinds a rejoining replica replays with
/// the engine's drop/postpone helpers.
constexpr bool is_headless_step(RecordKind kind) noexcept {
  return kind >= RecordKind::kDroppedArrival &&
         kind <= RecordKind::kPostponedRetries;
}

constexpr runtime::ControllerEngine::StepKind to_step_kind(
    RecordKind kind) noexcept {
  using StepKind = runtime::ControllerEngine::StepKind;
  switch (kind) {
    case RecordKind::kFault:
      return StepKind::kFault;
    case RecordKind::kDeparture:
      return StepKind::kDeparture;
    case RecordKind::kArrival:
      return StepKind::kArrival;
    case RecordKind::kRetries:
      return StepKind::kRetries;
    case RecordKind::kFlush:
      return StepKind::kFlush;
    default:
      return StepKind::kNone;
  }
}

constexpr RecordKind from_step_kind(
    runtime::ControllerEngine::StepKind kind) noexcept {
  using StepKind = runtime::ControllerEngine::StepKind;
  switch (kind) {
    case StepKind::kFault:
      return RecordKind::kFault;
    case StepKind::kDeparture:
      return RecordKind::kDeparture;
    case StepKind::kArrival:
      return RecordKind::kArrival;
    case StepKind::kRetries:
      return RecordKind::kRetries;
    default:
      return RecordKind::kFlush;
  }
}

struct LogRecord {
  std::uint64_t index = 0;  ///< 0-based position in the log (global, stable
                            ///< across truncation)
  std::uint64_t term = 0;   ///< replication term it was written under
  RecordKind kind = RecordKind::kFlush;
  util::SimTime when;       ///< simulation time of the step
  std::uint64_t digest = 0; ///< engine state digest after applying
};

/// One frozen checkpoint, anchored at the log index of its kSnapshot
/// record: the engine state after applying every record with a smaller
/// index. Shared so installs never copy the checkpoint itself.
struct SnapshotEntry {
  std::uint64_t index = 0;
  std::uint64_t term = 0;
  std::shared_ptr<const EngineCheckpoint> checkpoint;
};

class EventLog {
 public:
  /// Total records ever appended — one past the last index, unaffected
  /// by truncation.
  std::size_t size() const noexcept { return base_ + records_.size(); }
  bool empty() const noexcept { return size() == 0; }

  /// First index still retained (0 until the first truncation).
  std::uint64_t base() const noexcept { return base_; }
  /// Records currently held in memory: size() - base().
  std::size_t live_size() const noexcept { return records_.size(); }

  /// The retained records, [base(), size()).
  std::span<const LogRecord> records() const noexcept { return records_; }

  const LogRecord& record(std::uint64_t index) const {
    S3_REQUIRE(index >= base_ && index < size(),
               "EventLog: record index outside the retained range");
    return records_[index - base_];
  }

  /// Records at index >= `from` — what a replica that applied `from`
  /// records still has to replay. `from` must not precede base():
  /// a replica that far behind installs a snapshot instead.
  std::span<const LogRecord> suffix(std::uint64_t from) const {
    S3_REQUIRE(from <= size(), "EventLog: suffix past the end");
    S3_REQUIRE(from >= base_, "EventLog: suffix reaches truncated records");
    return std::span<const LogRecord>(records_).subspan(from - base_);
  }

  const LogRecord& append(RecordKind kind, std::uint64_t term,
                          util::SimTime when, std::uint64_t digest) {
    records_.push_back(
        {static_cast<std::uint64_t>(size()), term, kind, when, digest});
    return records_.back();
  }

  /// Appends a kSnapshot record anchored to `checkpoint`. The record's
  /// digest is the checkpoint state's digest, so the snapshot is
  /// tamper-evident the same way replayed steps are.
  const LogRecord& append_snapshot(
      std::uint64_t term, util::SimTime when,
      std::shared_ptr<const EngineCheckpoint> checkpoint) {
    S3_REQUIRE(checkpoint != nullptr, "EventLog: null checkpoint");
    const std::uint64_t digest = checkpoint->state().digest();
    const LogRecord& rec = append(RecordKind::kSnapshot, term, when, digest);
    snapshots_.push_back({rec.index, term, std::move(checkpoint)});
    return rec;
  }

  /// Most recent snapshot, nullptr before the first one.
  const SnapshotEntry* latest_snapshot() const noexcept {
    return snapshots_.empty() ? nullptr : &snapshots_.back();
  }

  /// Earliest snapshot anchored strictly after `index` — what a replica
  /// that rejected the record at `index` resyncs from. nullptr when no
  /// snapshot covers it yet.
  const SnapshotEntry* snapshot_after(std::uint64_t index) const noexcept {
    for (const SnapshotEntry& e : snapshots_) {
      if (e.index > index) return &e;
    }
    return nullptr;
  }

  /// Drops every record with index < `upto` (and the snapshots anchored
  /// in the dropped prefix). The caller is responsible for the
  /// truncation invariant: `upto` must not exceed the latest snapshot's
  /// index or any live replica's applied position — validated by
  /// check::validate_log_truncation before every call. Returns how many
  /// records were dropped.
  std::uint64_t truncate_prefix(std::uint64_t upto) {
    S3_REQUIRE(upto <= size(), "EventLog: truncation past the end");
    if (upto <= base_) return 0;
    const std::uint64_t dropped = upto - base_;
    records_.erase(records_.begin(),
                   records_.begin() + static_cast<std::ptrdiff_t>(dropped));
    std::erase_if(snapshots_,
                  [upto](const SnapshotEntry& e) { return e.index < upto; });
    base_ = upto;
    return dropped;
  }

  /// Test tamper hook: flips the stored digest of one retained record,
  /// simulating storage corruption. Replicas replaying past it must
  /// reject it and resync from a snapshot instead of diverging.
  void tamper_digest(std::uint64_t index) {
    S3_REQUIRE(index >= base_ && index < size(),
               "EventLog: tamper index outside the retained range");
    records_[index - base_].digest ^= 0xbad0c0ffee0ddefaULL;
  }

 private:
  std::uint64_t base_ = 0;
  std::vector<LogRecord> records_;  // records_[i].index == base_ + i
  std::vector<SnapshotEntry> snapshots_;  // ascending index, >= base_
};

}  // namespace s3::repl
