// Append-only replication log of controller-engine steps.
//
// The primary appends one record per step it applies: the step kind,
// its simulation time, the replication term it was written under, and
// the engine's post-step state digest. A backup catches up by replaying
// the suffix it has not applied yet — engines are deterministic, so
// re-applying the same kinds in the same order reproduces the primary's
// state bit-for-bit, and the stored digest lets the backup verify that
// claim record by record instead of trusting it.
//
// The log also records control events (crash, promotion, restart) and
// the headless-mode actions of an unreplicated controller (dropped
// arrivals/batches, postponed retries); those make the log a complete
// failover audit trail but only engine-step kinds are replayed.
//
// Deliberately lock-free: a log belongs to one ReplicationGroup, whose
// whole walk runs on a single worker thread; readers (the driver,
// tests) only look after the join. Cross-domain observations that do
// need concurrency go through FailoverLedger instead.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "s3/runtime/controller_engine.h"
#include "s3/util/error.h"
#include "s3/util/sim_time.h"

namespace s3::repl {

enum class RecordKind : std::uint8_t {
  // Engine steps — replayed by backups, 1:1 with ControllerEngine::StepKind.
  kFault = 0,
  kDeparture,
  kArrival,
  kRetries,
  kFlush,
  // Headless-mode actions (controller down, nobody to promote).
  kDroppedArrival,
  kDroppedBatch,
  kPostponedRetries,
  // Control events — audit trail only, never replayed.
  kCrash,
  kPromotion,
  kRestart,
};

/// True for kinds a backup replays through ControllerEngine.
constexpr bool is_engine_step(RecordKind kind) noexcept {
  return kind <= RecordKind::kFlush;
}

/// True for the headless-mode kinds a rejoining replica replays with
/// the engine's drop/postpone helpers.
constexpr bool is_headless_step(RecordKind kind) noexcept {
  return kind >= RecordKind::kDroppedArrival &&
         kind <= RecordKind::kPostponedRetries;
}

constexpr runtime::ControllerEngine::StepKind to_step_kind(
    RecordKind kind) noexcept {
  using StepKind = runtime::ControllerEngine::StepKind;
  switch (kind) {
    case RecordKind::kFault:
      return StepKind::kFault;
    case RecordKind::kDeparture:
      return StepKind::kDeparture;
    case RecordKind::kArrival:
      return StepKind::kArrival;
    case RecordKind::kRetries:
      return StepKind::kRetries;
    case RecordKind::kFlush:
      return StepKind::kFlush;
    default:
      return StepKind::kNone;
  }
}

constexpr RecordKind from_step_kind(
    runtime::ControllerEngine::StepKind kind) noexcept {
  using StepKind = runtime::ControllerEngine::StepKind;
  switch (kind) {
    case StepKind::kFault:
      return RecordKind::kFault;
    case StepKind::kDeparture:
      return RecordKind::kDeparture;
    case StepKind::kArrival:
      return RecordKind::kArrival;
    case StepKind::kRetries:
      return RecordKind::kRetries;
    default:
      return RecordKind::kFlush;
  }
}

struct LogRecord {
  std::uint64_t index = 0;  ///< 0-based position in the log
  std::uint64_t term = 0;   ///< replication term it was written under
  RecordKind kind = RecordKind::kFlush;
  util::SimTime when;       ///< simulation time of the step
  std::uint64_t digest = 0; ///< engine state digest after applying
};

class EventLog {
 public:
  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }

  std::span<const LogRecord> records() const noexcept { return records_; }

  /// Records at index >= `from` — what a replica that applied `from`
  /// records still has to replay.
  std::span<const LogRecord> suffix(std::uint64_t from) const {
    S3_REQUIRE(from <= records_.size(), "EventLog: suffix past the end");
    return std::span<const LogRecord>(records_).subspan(from);
  }

  const LogRecord& append(RecordKind kind, std::uint64_t term,
                          util::SimTime when, std::uint64_t digest) {
    records_.push_back(
        {static_cast<std::uint64_t>(records_.size()), term, kind, when,
         digest});
    return records_.back();
  }

 private:
  std::vector<LogRecord> records_;
};

}  // namespace s3::repl
