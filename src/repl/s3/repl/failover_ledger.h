// Cross-domain failover event collection.
//
// Replication groups run on independent worker threads and each may
// promote, restart, or rejoin controllers at any point of its walk. A
// FailoverLedger is the one place those events meet before the join:
// groups append under a mutex as events happen, and events() hands
// back a copy in canonical (when, domain, replica) order — the same
// order the driver used to reconstruct after the join, now available
// to any observer while the run is still in flight.
#pragma once

#include <algorithm>
#include <vector>

#include "s3/repl/replication_group.h"
#include "s3/util/thread_annotations.h"

namespace s3::repl {

class FailoverLedger {
 public:
  /// Appends one promotion/headless-restart event; any thread.
  void record(const FailoverEvent& event) S3_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    events_.push_back(event);
  }

  /// Snapshot of everything recorded so far, sorted by (when, domain,
  /// promoted replica) so concurrent append order cannot leak out.
  std::vector<FailoverEvent> events() const S3_EXCLUDES(mu_) {
    std::vector<FailoverEvent> out;
    {
      util::MutexLock lock(mu_);
      out = events_;
    }
    std::sort(out.begin(), out.end(),
              [](const FailoverEvent& a, const FailoverEvent& b) {
                if (a.when != b.when) return a.when < b.when;
                if (a.domain != b.domain) return a.domain < b.domain;
                return a.promoted_replica < b.promoted_replica;
              });
    return out;
  }

  std::size_t size() const S3_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return events_.size();
  }

 private:
  mutable util::Mutex mu_;
  std::vector<FailoverEvent> events_ S3_GUARDED_BY(mu_);
};

}  // namespace s3::repl
