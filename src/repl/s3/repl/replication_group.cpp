#include "s3/repl/replication_group.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "s3/check/validators.h"
#include "s3/repl/failover_ledger.h"
#include "s3/util/error.h"
#include "s3/util/metrics.h"
#include "s3/util/rng.h"

namespace s3::repl {

namespace {

using StepKind = runtime::ControllerEngine::StepKind;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct ReplMetrics {
  util::Counter* snapshots;
  util::Counter* snapshot_installs;
  util::Counter* truncated_records;
  util::Counter* digest_mismatches;
  util::Counter* adoptions;
  util::Counter* handbacks;
};

const ReplMetrics& repl_metrics() {
  static const ReplMetrics m{
      util::metrics().counter("repl.snapshots"),
      util::metrics().counter("repl.snapshot_installs"),
      util::metrics().counter("repl.truncated_records"),
      util::metrics().counter("repl.digest_mismatches"),
      util::metrics().counter("repl.adoptions"),
      util::metrics().counter("repl.handbacks"),
  };
  return m;
}

constexpr std::size_t kNoExclude = std::numeric_limits<std::size_t>::max();

}  // namespace

ReplicationGroup::ReplicationGroup(
    const wlan::Network& net, const trace::Trace& workload, ControllerId domain,
    std::vector<std::size_t> sessions, const sim::SelectorFactory& factory,
    const sim::ReplayConfig& config, const fault::FaultInjector& injector,
    const fault::RecoveryPolicy& recovery, const ReplicationConfig& repl)
    : net_(&net),
      workload_(&workload),
      factory_(&factory),
      replay_config_(config),
      recovery_(recovery),
      domain_(domain),
      injector_(&injector),
      repl_config_(repl),
      next_heartbeat_(util::SimTime(repl.heartbeat_s)) {
  S3_REQUIRE(repl_config_.heartbeat_s > 0,
             "ReplicationGroup: heartbeat period must be positive");
  S3_REQUIRE(!repl_config_.truncate || repl_config_.snapshot_every > 0,
             "ReplicationGroup: log truncation requires snapshots "
             "(snapshot-every > 0) so lagging replicas can re-seed");
  const std::size_t count = 1 + repl_config_.backups;
  replicas_.reserve(count + 1);  // +1: a transient adopter during a loss
  for (std::size_t i = 0; i < count; ++i) {
    Replica r;
    r.policy = factory.create(domain);
    S3_ASSERT(r.policy != nullptr,
              "ReplicationGroup: factory returned a null policy");
    r.assignment.assign(workload.size(), kInvalidAp);
    r.engine = std::make_unique<runtime::ControllerEngine>(
        net, workload, domain, sessions, *r.policy, config,
        std::span<ApId>(r.assignment), &injector, recovery);
    replicas_.push_back(std::move(r));
  }
  repl_stats_.replicas = count;
  sessions_ = std::move(sessions);
}

std::uint64_t ReplicationGroup::max_term() const noexcept {
  std::uint64_t t = 0;
  for (const Replica& r : replicas_) t = std::max(t, r.term);
  return t;
}

std::size_t ReplicationGroup::elect(std::size_t exclude) const {
  std::size_t best = kNoExclude;
  std::uint64_t best_term = 0;
  std::uint64_t best_applied = 0;
  std::uint64_t best_tiebreak = 0;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const Replica& r = replicas_[i];
    if (!r.alive || i == exclude) continue;
    // The tie-break is a pure hash of (seed, domain, replica index):
    // every deployment site computes the same winner without talking.
    const std::uint64_t tiebreak =
        util::SplitMix64(repl_config_.election_seed ^
                         (static_cast<std::uint64_t>(domain_) << 32) ^ i)
            .next();
    const bool wins =
        best == kNoExclude || r.term > best_term ||
        (r.term == best_term &&
         (r.applied > best_applied ||
          (r.applied == best_applied && tiebreak > best_tiebreak)));
    if (wins) {
      best = i;
      best_term = r.term;
      best_applied = r.applied;
      best_tiebreak = tiebreak;
    }
  }
  S3_REQUIRE(best != kNoExclude, "ReplicationGroup: no alive replica to elect");
  return best;
}

void ReplicationGroup::install_snapshot(Replica& r, const SnapshotEntry& entry) {
  r.policy = entry.checkpoint->clone_policy();
  r.assignment = entry.checkpoint->assignment_copy();
  r.engine = std::make_unique<runtime::ControllerEngine>(
      entry.checkpoint->engine(), *r.policy, std::span<ApId>(r.assignment));
  // The checkpoint holds the state after every record below its anchor;
  // the kSnapshot record itself replays as a control record.
  r.applied = entry.index;
  r.term = std::max(r.term, entry.term);
  r.needs_resync = false;
  r.resync_floor = 0;
  ++repl_stats_.snapshot_installs;
  repl_metrics().snapshot_installs->add(1);
}

std::uint64_t ReplicationGroup::catch_up(Replica& r) {
  std::uint64_t replayed = 0;
  while (true) {
    // Seed from a snapshot when forced — behind the truncated base, or
    // resyncing past a rejected record — or electively when more than
    // one snapshot interval behind the latest one; either way the
    // remaining replay is bounded by the interval, not the log length.
    const SnapshotEntry* seed = nullptr;
    if (r.needs_resync) {
      seed = log_.snapshot_after(r.resync_floor);
      if (seed == nullptr) return replayed;  // stalled until one is cut
      ++repl_stats_.resyncs;
    } else if (r.applied < log_.base()) {
      seed = log_.latest_snapshot();
      S3_ASSERT(seed != nullptr && seed->index >= log_.base(),
                "ReplicationGroup: truncated log without a covering snapshot");
    } else if (repl_config_.snapshot_every > 0) {
      const SnapshotEntry* latest = log_.latest_snapshot();
      if (latest != nullptr && latest->index > r.applied &&
          latest->index - r.applied > repl_config_.snapshot_every) {
        seed = latest;
      }
    }
    if (seed != nullptr) install_snapshot(r, *seed);

    bool rejected = false;
    for (const LogRecord& rec : log_.suffix(r.applied)) {
      std::uint64_t digest = 0;
      bool verifiable = false;
      if (is_engine_step(rec.kind)) {
        digest = r.engine->apply_step(to_step_kind(rec.kind));
        verifiable = true;
      } else if (is_headless_step(rec.kind)) {
        switch (rec.kind) {
          case RecordKind::kDroppedArrival:
            r.engine->drop_next_arrival();
            break;
          case RecordKind::kDroppedBatch:
            r.engine->drop_pending_batch();
            break;
          case RecordKind::kPostponedRetries:
            // `when` carries the postpone target (the window end).
            r.engine->postpone_retries_until(rec.when);
            break;
          default:
            break;
        }
        digest = r.engine->apply_step(StepKind::kNone);
        verifiable = true;
      }
      if (verifiable) {
        if (digest != rec.digest) {
          // The record's stored digest does not match what replaying it
          // produced: either the record is corrupted or this replica
          // diverged. Without snapshots there is no way back; with
          // them, reject the record and re-seed from the first
          // snapshot past it rather than running on unvouched state.
          S3_ASSERT(repl_config_.snapshot_every > 0,
                    "ReplicationGroup: replica diverged from the event log");
          ++repl_stats_.digest_mismatches;
          repl_metrics().digest_mismatches->add(1);
          r.needs_resync = true;
          r.resync_floor = rec.index;
          rejected = true;
          break;
        }
        ++replayed;
      }
      r.term = std::max(r.term, rec.term);
      r.applied = rec.index + 1;
    }
    if (!rejected) return replayed;
  }
}

void ReplicationGroup::account_catchup(std::uint64_t replayed,
                                       std::uint64_t wall_ns) {
  repl_stats_.catchup_records += replayed;
  repl_stats_.catchup_wall_ns += wall_ns;
  repl_stats_.max_catchup_records =
      std::max(repl_stats_.max_catchup_records, replayed);
}

void ReplicationGroup::append_primary(RecordKind kind, util::SimTime when,
                                      std::uint64_t digest) {
  const LogRecord& rec = log_.append(kind, primary().term, when, digest);
  if (rec.index == repl_config_.corrupt_record) log_.tamper_digest(rec.index);
  if (is_engine_step(kind) || is_headless_step(kind)) {
    ++replayable_since_snapshot_;
  }
  primary().applied = log_.size();
}

void ReplicationGroup::append_snapshot(util::SimTime when) {
  Replica& p = primary();
  auto checkpoint = std::make_shared<const EngineCheckpoint>(
      *p.engine, *p.policy, std::span<const ApId>(p.assignment));
  log_.append_snapshot(p.term, when, std::move(checkpoint));
  p.applied = log_.size();
  replayable_since_snapshot_ = 0;
  ++repl_stats_.snapshots;
  repl_metrics().snapshots->add(1);
  maybe_truncate();
}

void ReplicationGroup::maybe_snapshot(util::SimTime when) {
  if (repl_config_.snapshot_every == 0) return;
  if (replayable_since_snapshot_ < repl_config_.snapshot_every) return;
  append_snapshot(when);
}

void ReplicationGroup::maybe_truncate() {
  if (!repl_config_.truncate) return;
  const SnapshotEntry* latest = log_.latest_snapshot();
  if (latest == nullptr) return;
  // Never past the latest snapshot (a replica behind the base must be
  // able to re-seed) and never past what a live replica still needs.
  std::uint64_t upto = latest->index;
  for (const Replica& r : replicas_) {
    if (r.alive) upto = std::min(upto, r.applied);
  }
  if (upto <= log_.base()) return;

  std::vector<check::ReplicaLogPosition> positions;
  positions.reserve(replicas_.size());
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    positions.push_back({i, replicas_[i].alive, replicas_[i].applied});
  }
  const check::CheckReport report = check::validate_log_truncation(
      upto, log_.size(), /*has_snapshot=*/true, latest->index, positions);
  S3_ASSERT(report.ok(),
            "ReplicationGroup: log truncation would orphan a replica");
  const std::uint64_t dropped = log_.truncate_prefix(upto);
  repl_stats_.truncated_records += dropped;
  repl_metrics().truncated_records->add(dropped);
}

void ReplicationGroup::maybe_heartbeat(util::SimTime when) {
  if (when < next_heartbeat_) return;
  while (next_heartbeat_ <= when) {
    next_heartbeat_ += util::SimTime(repl_config_.heartbeat_s);
  }
  ++repl_stats_.heartbeats;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (i == primary_index_ || !replicas_[i].alive) continue;
    catch_up(replicas_[i]);
  }
  // A backup that just rejected a corrupted record waits for a snapshot
  // past it; cut one from the (healthy) primary now so the stall lasts
  // at most one heartbeat.
  if (repl_config_.snapshot_every > 0) {
    bool stalled = false;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      const Replica& r = replicas_[i];
      if (i != primary_index_ && r.alive && r.needs_resync &&
          log_.snapshot_after(r.resync_floor) == nullptr) {
        stalled = true;
      }
    }
    if (stalled) {
      append_snapshot(when);
      for (std::size_t i = 0; i < replicas_.size(); ++i) {
        if (i == primary_index_ || !replicas_[i].alive) continue;
        if (replicas_[i].needs_resync) catch_up(replicas_[i]);
      }
    }
  }
  maybe_truncate();
}

void ReplicationGroup::handle_restarts(util::SimTime now, bool force) {
  bool revived = false;
  for (auto it = pending_restarts_.begin(); it != pending_restarts_.end();) {
    if (!force && it->at > now) {
      ++it;
      continue;
    }
    Replica& r = replicas_[it->replica];
    r.alive = true;
    const std::uint64_t t0 = now_ns();
    const std::uint64_t replayed = catch_up(r);
    const std::uint64_t ns = now_ns() - t0;
    r.term = max_term();
    ++repl_stats_.rejoins;
    account_catchup(replayed, ns);
    log_.append(RecordKind::kRestart, r.term, it->at,
                r.engine->apply_step(StepKind::kNone));
    // A replica still waiting out a rejected record keeps its position;
    // it completes the catch-up once a snapshot past the record exists.
    if (!r.needs_resync) r.applied = log_.size();
    revived = true;
    it = pending_restarts_.erase(it);
  }
  if (revived && adopter_active_) handle_handback();
}

void ReplicationGroup::run_headless(const util::TimeInterval& window) {
  ++repl_stats_.headless_windows;
  Replica& r = primary();

  // Nobody is holding the pending batch anymore; its members are lost.
  r.engine->drop_pending_batch();
  append_primary(RecordKind::kDroppedBatch, window.begin,
                 r.engine->apply_step(StepKind::kNone));
  // Evicted stations keep scanning but there is no controller to admit
  // them until the restart.
  r.engine->postpone_retries_until(window.end);
  append_primary(RecordKind::kPostponedRetries, window.end,
                 r.engine->apply_step(StepKind::kNone));

  while (true) {
    const runtime::ControllerEngine::Step step = r.engine->next_step();
    if (step.kind == StepKind::kNone || step.when >= window.end) break;
    switch (step.kind) {
      case StepKind::kArrival:
        r.engine->drop_next_arrival();
        append_primary(RecordKind::kDroppedArrival, step.when,
                       r.engine->apply_step(StepKind::kNone));
        break;
      case StepKind::kRetries:
        // An AP outage inside the window evicted stations and re-armed
        // their retries; park them again.
        r.engine->postpone_retries_until(window.end);
        append_primary(RecordKind::kPostponedRetries, window.end,
                       r.engine->apply_step(StepKind::kNone));
        break;
      case StepKind::kFlush:
        // Unreachable in a quiet window (arrivals are dropped before
        // they batch), but a crash between batching and flushing must
        // not publish placements nobody computed.
        r.engine->drop_pending_batch();
        append_primary(RecordKind::kDroppedBatch, step.when,
                       r.engine->apply_step(StepKind::kNone));
        break;
      default:
        // Departures and AP fault flips are physical events; they
        // happen with or without a controller.
        append_primary(from_step_kind(step.kind), step.when,
                       r.engine->apply_step(step.kind));
        break;
    }
  }

  r.term = max_term() + 1;
  append_primary(RecordKind::kRestart, window.end,
                 r.engine->apply_step(StepKind::kNone));
  FailoverEvent ev;
  ev.domain = domain_;
  ev.when = window.begin;
  ev.promoted_replica = primary_index_;
  ev.new_term = r.term;
  ev.headless = true;
  ev.kind = FailoverKind::kHeadless;
  record_failover(ev);
}

void ReplicationGroup::handle_outage(const util::TimeInterval& window) {
  Replica& dead = primary();
  append_primary(RecordKind::kCrash, window.begin,
                 dead.engine->apply_step(StepKind::kNone));

  bool has_backup = false;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (i != primary_index_ && replicas_[i].alive) has_backup = true;
  }
  if (!has_backup) {
    run_headless(window);
    return;
  }

  fault::ReplicaSnapshot dead_snap = dead.engine->snapshot();
  dead_snap.term = dead.term;
  dead_snap.applied_records = dead.applied;
  dead.alive = false;
  pending_restarts_.push_back({primary_index_, window.end});

  const std::size_t winner = elect(kNoExclude);
  const std::uint64_t installs_before = repl_stats_.snapshot_installs;
  const std::uint64_t t0 = now_ns();
  std::uint64_t replayed = catch_up(replicas_[winner]);
  if (replicas_[winner].needs_resync) {
    // A corrupted record sits between the winner and the log head. The
    // crashed primary's engine still holds the authoritative state —
    // freeze it as the resync snapshot before it goes dark. (primary()
    // still points at the crashed replica here.)
    append_snapshot(window.begin);
    replayed += catch_up(replicas_[winner]);
  }
  const std::uint64_t ns = now_ns() - t0;
  replicas_[winner].term = max_term() + 1;
  primary_index_ = winner;

  // The promotion gate: the backup must now be carrying exactly the
  // state the primary died with — placements, social counters,
  // degradation machine, stats, everything.
  fault::ReplicaSnapshot promoted = snapshot();
  const check::CheckReport report =
      check::validate_replica_convergence(dead_snap, promoted);
  S3_ASSERT(report.ok(),
            "ReplicationGroup: promoted backup diverged from crashed primary");

  append_primary(RecordKind::kPromotion, window.begin, promoted.digest());
  ++repl_stats_.failovers;
  account_catchup(replayed, ns);
  FailoverEvent ev;
  ev.domain = domain_;
  ev.when = window.begin;
  ev.promoted_replica = winner;
  ev.new_term = replicas_[winner].term;
  ev.records_replayed = replayed;
  ev.catchup_wall_ns = ns;
  ev.converged = report.ok();
  ev.kind = FailoverKind::kPromotion;
  ev.snapshot_install = repl_stats_.snapshot_installs > installs_before;
  record_failover(ev);
}

ControllerId ReplicationGroup::choose_adopter(util::SimTime at) const {
  const std::size_t n = net_->num_controllers();
  for (std::size_t k = 1; k < n; ++k) {
    const auto cand = static_cast<ControllerId>((domain_ + k) % n);
    if (!injector_->controller_down(cand, at)) return cand;
  }
  return kInvalidController;
}

void ReplicationGroup::handle_loss(const util::TimeInterval& window) {
  append_primary(RecordKind::kCrash, window.begin,
                 primary().engine->apply_step(StepKind::kNone));
  fault::ReplicaSnapshot dead_snap = primary().engine->snapshot();
  dead_snap.term = primary().term;
  dead_snap.applied_records = primary().applied;

  const ControllerId adopter = choose_adopter(window.begin);
  if (adopter == kInvalidController) {
    // Every other controller is down too; nobody can adopt. The domain
    // rides the window out headless on the primary's restart path, and
    // its backups stay dark until the window end.
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (i == primary_index_ || !replicas_[i].alive) continue;
      replicas_[i].alive = false;
      pending_restarts_.push_back({i, window.end});
    }
    run_headless(window);
    return;
  }

  // The whole replica set is gone at once.
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!replicas_[i].alive) continue;
    replicas_[i].alive = false;
    pending_restarts_.push_back({i, window.end});
  }

  // The adopter seeds from the last replicated snapshot — all it ever
  // received from this domain — or, before the first snapshot, rebuilds
  // from the full log the way a day-zero replica would.
  const SnapshotEntry* seed = log_.latest_snapshot();
  const std::uint64_t t0 = now_ns();
  Replica a;
  a.alive = true;
  if (seed != nullptr) {
    install_snapshot(a, *seed);
  } else {
    S3_ASSERT(log_.base() == 0,
              "ReplicationGroup: truncated log without a snapshot to adopt from");
    a.policy = factory_->create(domain_);
    S3_ASSERT(a.policy != nullptr,
              "ReplicationGroup: factory returned a null policy");
    a.assignment.assign(workload_->size(), kInvalidAp);
    a.engine = std::make_unique<runtime::ControllerEngine>(
        *net_, *workload_, domain_, sessions_, *a.policy, replay_config_,
        std::span<ApId>(a.assignment), injector_, recovery_);
  }
  replicas_.push_back(std::move(a));
  const std::size_t adopter_index = replicas_.size() - 1;
  std::uint64_t replayed = catch_up(replicas_[adopter_index]);
  if (replicas_[adopter_index].needs_resync) {
    // Same rescue as a promotion across a corrupted record: the lost
    // primary's engine is still authoritative; freeze it before dark.
    append_snapshot(window.begin);
    replayed += catch_up(replicas_[adopter_index]);
  }
  const std::uint64_t ns = now_ns() - t0;
  replicas_[adopter_index].term = max_term() + 1;
  primary_index_ = adopter_index;
  adopter_active_ = true;
  adopter_controller_ = adopter;
  handback_at_ = window.end;

  // Adoption gate: the neighbor controller must be carrying exactly the
  // state the lost primary died with.
  fault::ReplicaSnapshot adopted = snapshot();
  const check::CheckReport report =
      check::validate_replica_convergence(dead_snap, adopted);
  S3_ASSERT(report.ok(),
            "ReplicationGroup: adopter diverged from the lost primary");

  append_primary(RecordKind::kAdoption, window.begin, adopted.digest());
  ++repl_stats_.adoptions;
  repl_metrics().adoptions->add(1);
  account_catchup(replayed, ns);
  FailoverEvent ev;
  ev.domain = domain_;
  ev.when = window.begin;
  ev.promoted_replica = adopter_index;
  ev.new_term = replicas_[adopter_index].term;
  ev.records_replayed = replayed;
  ev.catchup_wall_ns = ns;
  ev.converged = report.ok();
  ev.kind = FailoverKind::kAdoption;
  ev.adopter = adopter;
  ev.snapshot_install = seed != nullptr;
  record_failover(ev);
}

void ReplicationGroup::handle_handback() {
  // The adopter steps down only once at least one original is back.
  const std::size_t adopter_index = replicas_.size() - 1;
  bool any_original_alive = false;
  for (std::size_t i = 0; i < adopter_index; ++i) {
    if (replicas_[i].alive) any_original_alive = true;
  }
  if (!any_original_alive) return;

  const std::size_t winner = elect(adopter_index);
  const std::uint64_t installs_before = repl_stats_.snapshot_installs;
  const std::uint64_t t0 = now_ns();
  std::uint64_t replayed = catch_up(replicas_[winner]);
  if (replicas_[winner].needs_resync) {
    // primary() is still the adopter here; freeze its state so the
    // revived original can resync past the rejected record.
    append_snapshot(handback_at_);
    replayed += catch_up(replicas_[winner]);
  }
  const std::uint64_t ns = now_ns() - t0;
  replicas_[winner].term = max_term() + 1;

  fault::ReplicaSnapshot adopter_snap = replicas_[adopter_index].engine->snapshot();
  adopter_snap.term = replicas_[adopter_index].term;
  adopter_snap.applied_records = replicas_[adopter_index].applied;
  fault::ReplicaSnapshot winner_snap = replicas_[winner].engine->snapshot();
  winner_snap.term = replicas_[winner].term;
  winner_snap.applied_records = replicas_[winner].applied;
  const check::CheckReport report =
      check::validate_replica_convergence(adopter_snap, winner_snap);
  S3_ASSERT(report.ok(),
            "ReplicationGroup: revived original diverged from the adopter");

  primary_index_ = winner;
  append_primary(RecordKind::kHandback, handback_at_, winner_snap.digest());
  ++repl_stats_.handbacks;
  repl_metrics().handbacks->add(1);
  account_catchup(replayed, ns);
  FailoverEvent ev;
  ev.domain = domain_;
  ev.when = handback_at_;
  ev.promoted_replica = winner;
  ev.new_term = replicas_[winner].term;
  ev.records_replayed = replayed;
  ev.catchup_wall_ns = ns;
  ev.converged = report.ok();
  ev.kind = FailoverKind::kHandback;
  ev.adopter = adopter_controller_;
  ev.snapshot_install = repl_stats_.snapshot_installs > installs_before;
  record_failover(ev);

  // Retire the transient adopter replica.
  replicas_.pop_back();
  adopter_active_ = false;
  adopter_controller_ = kInvalidController;
}

void ReplicationGroup::record_failover(const FailoverEvent& ev) {
  failovers_.push_back(ev);
  if (ledger_ != nullptr) ledger_->record(ev);
}

void ReplicationGroup::run() {
  // One merged, begin-sorted schedule of this domain's crash (outage)
  // and whole-replica-set (loss) windows. fault::validate_plan
  // guarantees windows of the same controller never overlap.
  struct Scheduled {
    util::TimeInterval window;
    bool loss;
  };
  std::vector<Scheduled> windows;
  for (const util::TimeInterval& iv : injector_->controller_outages(domain_)) {
    windows.push_back({iv, false});
  }
  for (const util::TimeInterval& iv : injector_->controller_losses(domain_)) {
    windows.push_back({iv, true});
  }
  std::sort(windows.begin(), windows.end(),
            [](const Scheduled& a, const Scheduled& b) {
              return a.window.begin < b.window.begin;
            });

  std::size_t wi = 0;
  while (true) {
    const runtime::ControllerEngine::Step step = primary().engine->next_step();
    if (step.kind == StepKind::kNone) break;
    // Restarts strictly before crashes at the same instant: half-open
    // windows mean a controller whose window ends at t is back at t.
    handle_restarts(step.when, /*force=*/false);
    if (wi < windows.size() && step.when >= windows[wi].window.begin) {
      if (windows[wi].loss) {
        handle_loss(windows[wi].window);
      } else {
        handle_outage(windows[wi].window);
      }
      ++wi;
      continue;
    }
    const std::uint64_t digest = primary().engine->apply_step(step.kind);
    append_primary(from_step_kind(step.kind), step.when, digest);
    maybe_snapshot(step.when);
    maybe_heartbeat(step.when);
  }
  handle_restarts(runtime::ControllerEngine::kNever, /*force=*/true);

  // Backstop for a replica still waiting out a rejected record after
  // the last heartbeat: freeze the primary once so the sweep below can
  // re-seed it.
  if (repl_config_.snapshot_every > 0 && !log_.empty()) {
    bool stalled = false;
    for (const Replica& r : replicas_) {
      if (r.alive && r.needs_resync &&
          log_.snapshot_after(r.resync_floor) == nullptr) {
        stalled = true;
      }
    }
    if (stalled) append_snapshot(log_.records().back().when);
  }

  // End-of-run convergence sweep: every replica must agree with the
  // acting primary once it has applied the whole log.
  const fault::ReplicaSnapshot final_snap = snapshot();
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (i == primary_index_) continue;
    catch_up(replicas_[i]);
    fault::ReplicaSnapshot backup_snap = replicas_[i].engine->snapshot();
    backup_snap.term = replicas_[i].term;
    backup_snap.applied_records = replicas_[i].applied;
    const check::CheckReport report =
        check::validate_replica_convergence(final_snap, backup_snap);
    S3_ASSERT(report.ok(),
              "ReplicationGroup: backup diverged from primary at end of run");
  }

  primary().engine->finalize();
  repl_stats_.log_records = log_.size();
  repl_stats_.live_log_records = log_.live_size();
  repl_stats_.final_term = max_term();
  finalized_ = true;
}

const sim::ReplayStats& ReplicationGroup::stats() const {
  S3_REQUIRE(finalized_, "ReplicationGroup: stats() before run()");
  return primary().engine->stats();
}

void ReplicationGroup::publish_assignment(std::span<ApId> global) const {
  S3_REQUIRE(finalized_, "ReplicationGroup: publish before run()");
  const Replica& p = primary();
  S3_REQUIRE(global.size() == p.assignment.size(),
             "ReplicationGroup: assignment size mismatch");
  for (const std::size_t s : sessions_) global[s] = p.assignment[s];
}

fault::ReplicaSnapshot ReplicationGroup::snapshot() const {
  fault::ReplicaSnapshot snap = primary().engine->snapshot();
  snap.term = primary().term;
  snap.applied_records = primary().applied;
  return snap;
}

}  // namespace s3::repl
