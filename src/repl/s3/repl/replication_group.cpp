#include "s3/repl/replication_group.h"

#include <chrono>
#include <limits>

#include "s3/check/validators.h"
#include "s3/repl/failover_ledger.h"
#include "s3/util/error.h"
#include "s3/util/rng.h"

namespace s3::repl {

namespace {

using StepKind = runtime::ControllerEngine::StepKind;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ReplicationGroup::ReplicationGroup(
    const wlan::Network& net, const trace::Trace& workload, ControllerId domain,
    std::vector<std::size_t> sessions, const sim::SelectorFactory& factory,
    const sim::ReplayConfig& config, const fault::FaultInjector& injector,
    const fault::RecoveryPolicy& recovery, const ReplicationConfig& repl)
    : domain_(domain),
      injector_(&injector),
      repl_config_(repl),
      next_heartbeat_(util::SimTime(repl.heartbeat_s)) {
  S3_REQUIRE(repl_config_.heartbeat_s > 0,
             "ReplicationGroup: heartbeat period must be positive");
  const std::size_t count = 1 + repl_config_.backups;
  replicas_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Replica r;
    r.policy = factory.create(domain);
    S3_ASSERT(r.policy != nullptr,
              "ReplicationGroup: factory returned a null policy");
    r.assignment.assign(workload.size(), kInvalidAp);
    r.engine = std::make_unique<runtime::ControllerEngine>(
        net, workload, domain, sessions, *r.policy, config,
        std::span<ApId>(r.assignment), &injector, recovery);
    replicas_.push_back(std::move(r));
  }
  repl_stats_.replicas = count;
  sessions_ = std::move(sessions);
}

std::uint64_t ReplicationGroup::max_term() const noexcept {
  std::uint64_t t = 0;
  for (const Replica& r : replicas_) t = std::max(t, r.term);
  return t;
}

std::size_t ReplicationGroup::elect() const {
  std::size_t best = std::numeric_limits<std::size_t>::max();
  std::uint64_t best_term = 0;
  std::uint64_t best_applied = 0;
  std::uint64_t best_tiebreak = 0;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const Replica& r = replicas_[i];
    if (!r.alive) continue;
    // The tie-break is a pure hash of (seed, domain, replica index):
    // every deployment site computes the same winner without talking.
    const std::uint64_t tiebreak =
        util::SplitMix64(repl_config_.election_seed ^
                         (static_cast<std::uint64_t>(domain_) << 32) ^ i)
            .next();
    const bool wins =
        best == std::numeric_limits<std::size_t>::max() ||
        r.term > best_term ||
        (r.term == best_term &&
         (r.applied > best_applied ||
          (r.applied == best_applied && tiebreak > best_tiebreak)));
    if (wins) {
      best = i;
      best_term = r.term;
      best_applied = r.applied;
      best_tiebreak = tiebreak;
    }
  }
  S3_REQUIRE(best != std::numeric_limits<std::size_t>::max(),
             "ReplicationGroup: no alive replica to elect");
  return best;
}

std::uint64_t ReplicationGroup::catch_up(Replica& r) {
  std::uint64_t replayed = 0;
  for (const LogRecord& rec : log_.suffix(r.applied)) {
    if (is_engine_step(rec.kind)) {
      const std::uint64_t digest = r.engine->apply_step(to_step_kind(rec.kind));
      S3_ASSERT(digest == rec.digest,
                "ReplicationGroup: replica diverged from the event log");
      ++replayed;
    } else if (is_headless_step(rec.kind)) {
      switch (rec.kind) {
        case RecordKind::kDroppedArrival:
          r.engine->drop_next_arrival();
          break;
        case RecordKind::kDroppedBatch:
          r.engine->drop_pending_batch();
          break;
        case RecordKind::kPostponedRetries:
          // `when` carries the postpone target (the window end).
          r.engine->postpone_retries_until(rec.when);
          break;
        default:
          break;
      }
      const std::uint64_t digest = r.engine->apply_step(StepKind::kNone);
      S3_ASSERT(digest == rec.digest,
                "ReplicationGroup: replica diverged on a headless record");
      ++replayed;
    }
    r.term = std::max(r.term, rec.term);
    r.applied = rec.index + 1;
  }
  return replayed;
}

void ReplicationGroup::append_primary(RecordKind kind, util::SimTime when,
                                      std::uint64_t digest) {
  log_.append(kind, primary().term, when, digest);
  primary().applied = log_.size();
}

void ReplicationGroup::maybe_heartbeat(util::SimTime when) {
  if (when < next_heartbeat_) return;
  while (next_heartbeat_ <= when) {
    next_heartbeat_ += util::SimTime(repl_config_.heartbeat_s);
  }
  ++repl_stats_.heartbeats;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (i == primary_index_ || !replicas_[i].alive) continue;
    catch_up(replicas_[i]);
  }
}

void ReplicationGroup::handle_restarts(util::SimTime now, bool force) {
  for (auto it = pending_restarts_.begin(); it != pending_restarts_.end();) {
    if (!force && it->at > now) {
      ++it;
      continue;
    }
    Replica& r = replicas_[it->replica];
    r.alive = true;
    const std::uint64_t t0 = now_ns();
    const std::uint64_t replayed = catch_up(r);
    const std::uint64_t ns = now_ns() - t0;
    r.term = max_term();
    ++repl_stats_.rejoins;
    repl_stats_.catchup_records += replayed;
    repl_stats_.catchup_wall_ns += ns;
    log_.append(RecordKind::kRestart, r.term, it->at,
                r.engine->apply_step(StepKind::kNone));
    r.applied = log_.size();
    it = pending_restarts_.erase(it);
  }
}

void ReplicationGroup::run_headless(const util::TimeInterval& window) {
  ++repl_stats_.headless_windows;
  Replica& r = primary();

  // Nobody is holding the pending batch anymore; its members are lost.
  r.engine->drop_pending_batch();
  append_primary(RecordKind::kDroppedBatch, window.begin,
                 r.engine->apply_step(StepKind::kNone));
  // Evicted stations keep scanning but there is no controller to admit
  // them until the restart.
  r.engine->postpone_retries_until(window.end);
  append_primary(RecordKind::kPostponedRetries, window.end,
                 r.engine->apply_step(StepKind::kNone));

  while (true) {
    const runtime::ControllerEngine::Step step = r.engine->next_step();
    if (step.kind == StepKind::kNone || step.when >= window.end) break;
    switch (step.kind) {
      case StepKind::kArrival:
        r.engine->drop_next_arrival();
        append_primary(RecordKind::kDroppedArrival, step.when,
                       r.engine->apply_step(StepKind::kNone));
        break;
      case StepKind::kRetries:
        // An AP outage inside the window evicted stations and re-armed
        // their retries; park them again.
        r.engine->postpone_retries_until(window.end);
        append_primary(RecordKind::kPostponedRetries, window.end,
                       r.engine->apply_step(StepKind::kNone));
        break;
      case StepKind::kFlush:
        // Unreachable in a quiet window (arrivals are dropped before
        // they batch), but a crash between batching and flushing must
        // not publish placements nobody computed.
        r.engine->drop_pending_batch();
        append_primary(RecordKind::kDroppedBatch, step.when,
                       r.engine->apply_step(StepKind::kNone));
        break;
      default:
        // Departures and AP fault flips are physical events; they
        // happen with or without a controller.
        append_primary(from_step_kind(step.kind), step.when,
                       r.engine->apply_step(step.kind));
        break;
    }
  }

  r.term = max_term() + 1;
  append_primary(RecordKind::kRestart, window.end,
                 r.engine->apply_step(StepKind::kNone));
  FailoverEvent ev;
  ev.domain = domain_;
  ev.when = window.begin;
  ev.promoted_replica = primary_index_;
  ev.new_term = r.term;
  ev.headless = true;
  record_failover(ev);
}

void ReplicationGroup::handle_outage(const util::TimeInterval& window) {
  Replica& dead = primary();
  append_primary(RecordKind::kCrash, window.begin,
                 dead.engine->apply_step(StepKind::kNone));

  bool has_backup = false;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (i != primary_index_ && replicas_[i].alive) has_backup = true;
  }
  if (!has_backup) {
    run_headless(window);
    return;
  }

  fault::ReplicaSnapshot dead_snap = dead.engine->snapshot();
  dead_snap.term = dead.term;
  dead_snap.applied_records = dead.applied;
  dead.alive = false;
  pending_restarts_.push_back({primary_index_, window.end});

  const std::size_t winner = elect();
  const std::uint64_t t0 = now_ns();
  const std::uint64_t replayed = catch_up(replicas_[winner]);
  const std::uint64_t ns = now_ns() - t0;
  replicas_[winner].term = max_term() + 1;
  primary_index_ = winner;

  // The promotion gate: the backup must now be carrying exactly the
  // state the primary died with — placements, social counters,
  // degradation machine, stats, everything.
  fault::ReplicaSnapshot promoted = snapshot();
  const check::CheckReport report =
      check::validate_replica_convergence(dead_snap, promoted);
  S3_ASSERT(report.ok(),
            "ReplicationGroup: promoted backup diverged from crashed primary");

  append_primary(RecordKind::kPromotion, window.begin, promoted.digest());
  ++repl_stats_.failovers;
  repl_stats_.catchup_records += replayed;
  repl_stats_.catchup_wall_ns += ns;
  FailoverEvent ev;
  ev.domain = domain_;
  ev.when = window.begin;
  ev.promoted_replica = winner;
  ev.new_term = replicas_[winner].term;
  ev.records_replayed = replayed;
  ev.catchup_wall_ns = ns;
  ev.converged = report.ok();
  record_failover(ev);
}

void ReplicationGroup::record_failover(const FailoverEvent& ev) {
  failovers_.push_back(ev);
  if (ledger_ != nullptr) ledger_->record(ev);
}

void ReplicationGroup::run() {
  const std::vector<util::TimeInterval> windows =
      injector_->controller_outages(domain_);
  std::size_t wi = 0;
  while (true) {
    const runtime::ControllerEngine::Step step = primary().engine->next_step();
    if (step.kind == StepKind::kNone) break;
    // Restarts strictly before crashes at the same instant: half-open
    // windows mean a controller whose window ends at t is back at t.
    handle_restarts(step.when, /*force=*/false);
    if (wi < windows.size() && step.when >= windows[wi].begin) {
      handle_outage(windows[wi]);
      ++wi;
      continue;
    }
    const std::uint64_t digest = primary().engine->apply_step(step.kind);
    append_primary(from_step_kind(step.kind), step.when, digest);
    maybe_heartbeat(step.when);
  }
  handle_restarts(runtime::ControllerEngine::kNever, /*force=*/true);

  // End-of-run convergence sweep: every replica must agree with the
  // acting primary once it has applied the whole log.
  const fault::ReplicaSnapshot final_snap = snapshot();
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (i == primary_index_) continue;
    catch_up(replicas_[i]);
    fault::ReplicaSnapshot backup_snap = replicas_[i].engine->snapshot();
    backup_snap.term = replicas_[i].term;
    backup_snap.applied_records = replicas_[i].applied;
    const check::CheckReport report =
        check::validate_replica_convergence(final_snap, backup_snap);
    S3_ASSERT(report.ok(),
              "ReplicationGroup: backup diverged from primary at end of run");
  }

  primary().engine->finalize();
  repl_stats_.log_records = log_.size();
  repl_stats_.final_term = max_term();
  finalized_ = true;
}

const sim::ReplayStats& ReplicationGroup::stats() const {
  S3_REQUIRE(finalized_, "ReplicationGroup: stats() before run()");
  return primary().engine->stats();
}

void ReplicationGroup::publish_assignment(std::span<ApId> global) const {
  S3_REQUIRE(finalized_, "ReplicationGroup: publish before run()");
  const Replica& p = primary();
  S3_REQUIRE(global.size() == p.assignment.size(),
             "ReplicationGroup: assignment size mismatch");
  for (const std::size_t s : sessions_) global[s] = p.assignment[s];
}

fault::ReplicaSnapshot ReplicationGroup::snapshot() const {
  fault::ReplicaSnapshot snap = primary().engine->snapshot();
  snap.term = primary().term;
  snap.applied_records = primary().applied;
  return snap;
}

}  // namespace s3::repl
