#include "s3/repl/replicated_driver.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <thread>

#include "s3/check/contract.h"
#include "s3/check/validators.h"
#include "s3/repl/failover_ledger.h"
#include "s3/runtime/error_collector.h"
#include "s3/runtime/replay_driver.h"
#include "s3/runtime/shard_stats_board.h"
#include "s3/util/thread_annotations.h"

namespace s3::repl {

ReplicatedReplayDriver::ReplicatedReplayDriver(const wlan::Network& net,
                                               ReplicatedDriverConfig config)
    : net_(&net), config_(config) {
  S3_REQUIRE(config_.replay.dispatch_window_s >= 0,
             "ReplicatedReplayDriver: negative dispatch window");
  S3_REQUIRE(config_.injector != nullptr,
             "ReplicatedReplayDriver: an injector is required (without one "
             "there is nothing to fail over from — use runtime::ReplayDriver)");
  S3_REQUIRE(config_.repl.heartbeat_s > 0,
             "ReplicatedReplayDriver: heartbeat period must be positive");
}

unsigned ReplicatedReplayDriver::effective_threads() const noexcept {
  if (config_.threads > 0) return config_.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ReplicatedReplayResult ReplicatedReplayDriver::run(
    const trace::Trace& workload, const sim::SelectorFactory& factory) const {
  if (check::contracts_enabled()) {
    check::validate_trace(workload, net_);
  }

  std::vector<std::vector<std::size_t>> shards(net_->num_controllers());
  const auto sessions = workload.sessions();
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const ControllerId c = net_->controller_of_building(sessions[i].building);
    shards[c].push_back(i);
  }

  // One group per non-empty domain, in controller order so policy
  // construction never depends on thread schedule.
  std::vector<std::unique_ptr<ReplicationGroup>> groups;
  for (ControllerId c = 0; c < shards.size(); ++c) {
    if (shards[c].empty()) continue;
    groups.push_back(std::make_unique<ReplicationGroup>(
        *net_, workload, c, std::move(shards[c]), factory, config_.replay,
        *config_.injector, config_.recovery, config_.repl));
  }

  // Groups stream failover events into the ledger as they promote and
  // post their acting primary's stats to the board as they finish; both
  // hand back canonically ordered snapshots after the join, so the
  // merge never depends on thread schedule.
  FailoverLedger ledger;
  runtime::ShardStatsBoard board;
  for (auto& g : groups) g->set_failover_ledger(&ledger);

  const unsigned workers = std::min<unsigned>(
      effective_threads(), static_cast<unsigned>(groups.size()));
  if (workers <= 1) {
    for (auto& g : groups) {
      g->run();
      board.record(g->domain(), g->stats());
    }
  } else {
    std::atomic<std::size_t> next{0};
    runtime::ErrorCollector errors;
    auto work = [&]() {
      for (std::size_t i = next.fetch_add(1); i < groups.size();
           i = next.fetch_add(1)) {
        try {
          groups[i]->run();
          board.record(groups[i]->domain(), groups[i]->stats());
        } catch (...) {
          errors.capture(std::current_exception());
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(work);
    for (std::thread& t : pool) t.join();
    if (std::exception_ptr first = errors.take()) {
      std::rethrow_exception(first);
    }
  }

  // Merge after the join, sequentially, in controller order: each group
  // publishes into its own disjoint assignment slots.
  std::vector<ApId> assignment(workload.size(), kInvalidAp);
  ReplicatedReplayResult out;
  for (const auto& g : groups) {
    g->publish_assignment(assignment);
    const ReplStats& rs = g->repl_stats();
    out.repl.replicas = std::max(out.repl.replicas, rs.replicas);
    out.repl.failovers += rs.failovers;
    out.repl.headless_windows += rs.headless_windows;
    out.repl.rejoins += rs.rejoins;
    out.repl.heartbeats += rs.heartbeats;
    out.repl.log_records += rs.log_records;
    out.repl.catchup_records += rs.catchup_records;
    out.repl.catchup_wall_ns += rs.catchup_wall_ns;
    out.repl.final_term = std::max(out.repl.final_term, rs.final_term);
    out.repl.snapshots += rs.snapshots;
    out.repl.snapshot_installs += rs.snapshot_installs;
    out.repl.truncated_records += rs.truncated_records;
    out.repl.live_log_records += rs.live_log_records;
    out.repl.adoptions += rs.adoptions;
    out.repl.handbacks += rs.handbacks;
    out.repl.digest_mismatches += rs.digest_mismatches;
    out.repl.resyncs += rs.resyncs;
    out.repl.max_catchup_records =
        std::max(out.repl.max_catchup_records, rs.max_catchup_records);
  }
  out.failovers = ledger.events();
  out.result = sim::ReplayResult{workload.with_assignments(assignment),
                                 runtime::merge_stats(board.in_domain_order())};
  return out;
}

}  // namespace s3::repl
