#include "s3/util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace s3::util {

std::size_t Rng::weighted_index(std::span<const double> weights) {
  S3_REQUIRE(!weights.empty(), "weighted_index: empty weights");
  double total = 0.0;
  for (double w : weights) {
    S3_REQUIRE(w >= 0.0, "weighted_index: negative weight");
    total += w;
  }
  S3_REQUIRE(total > 0.0, "weighted_index: all weights zero");
  double r = uniform(0.0, total);
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    if (r < weights[i]) return i;
    r -= weights[i];
  }
  return weights.size() - 1;
}

std::vector<double> Rng::dirichlet(std::span<const double> alpha) {
  S3_REQUIRE(!alpha.empty(), "dirichlet: empty alpha");
  std::vector<double> out(alpha.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    S3_REQUIRE(alpha[i] > 0.0, "dirichlet: alpha must be positive");
    std::gamma_distribution<double> gamma(alpha[i], 1.0);
    out[i] = gamma(engine_);
    sum += out[i];
  }
  if (sum <= 0.0) {
    // All gammas underflowed (tiny alphas): fall back to a uniform point.
    std::fill(out.begin(), out.end(), 1.0 / static_cast<double>(out.size()));
    return out;
  }
  for (double& x : out) x /= sum;
  return out;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  S3_REQUIRE(k <= n, "sample_indices: k > n");
  // Partial Fisher–Yates over an index vector: O(n) memory, O(n + k) time.
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace s3::util
