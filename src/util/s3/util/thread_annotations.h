// Clang thread-safety (capability) annotations + an annotated mutex.
//
// The annotations turn the locking discipline of the shared-state
// classes (metrics bus, selector-name registry, replay driver error
// collection) into compiler-checked contracts: building with
//   clang++ -Wthread-safety -Werror
// proves every S3_GUARDED_BY field is only touched with its mutex
// held and every S3_REQUIRES method is only called under the right
// lock. Under GCC (and any compiler without the attributes) every
// macro expands to nothing, so the annotations are free documentation.
//
// Use util::Mutex + util::MutexLock instead of std::mutex +
// std::lock_guard wherever a field carries S3_GUARDED_BY — the
// standard types are not annotated, so the analysis cannot see them.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define S3_TSA_ATTRIBUTE(x) __attribute__((x))
#endif
#endif
#ifndef S3_TSA_ATTRIBUTE
#define S3_TSA_ATTRIBUTE(x)  // no-op outside clang
#endif

// A type that acts as a lockable capability ("mutex").
#define S3_CAPABILITY(x) S3_TSA_ATTRIBUTE(capability(x))
// RAII type that acquires on construction and releases on destruction.
#define S3_SCOPED_CAPABILITY S3_TSA_ATTRIBUTE(scoped_lockable)
// Field may only be read/written while holding the given capability.
#define S3_GUARDED_BY(x) S3_TSA_ATTRIBUTE(guarded_by(x))
// Pointed-to data (not the pointer itself) is guarded.
#define S3_PT_GUARDED_BY(x) S3_TSA_ATTRIBUTE(pt_guarded_by(x))
// Function must be called with the capability held.
#define S3_REQUIRES(...) S3_TSA_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define S3_REQUIRES_SHARED(...) \
  S3_TSA_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
// Function acquires / releases the capability and must be entered
// without / with it held.
#define S3_ACQUIRE(...) S3_TSA_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define S3_RELEASE(...) S3_TSA_ATTRIBUTE(release_capability(__VA_ARGS__))
#define S3_TRY_ACQUIRE(...) \
  S3_TSA_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
// Function must be called with the capability NOT held (deadlock
// prevention for self-calling paths).
#define S3_EXCLUDES(...) S3_TSA_ATTRIBUTE(locks_excluded(__VA_ARGS__))
// Escape hatch for code the analysis cannot follow.
#define S3_NO_THREAD_SAFETY_ANALYSIS \
  S3_TSA_ATTRIBUTE(no_thread_safety_analysis)

namespace s3::util {

/// std::mutex with capability annotations.
class S3_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() S3_ACQUIRE() { mu_.lock(); }
  void unlock() S3_RELEASE() { mu_.unlock(); }
  bool try_lock() S3_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  // s3lint: allow(lock-raw-mutex): this wrapper is where the raw
  // std::mutex lives; everything else goes through it.
  std::mutex mu_;
};

/// Scoped lock for util::Mutex (std::lock_guard is not annotated).
class S3_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) S3_ACQUIRE(mu) : mu_(&mu) { mu_->lock(); }
  ~MutexLock() S3_RELEASE() { mu_->unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

}  // namespace s3::util
