#include "s3/util/argspec.h"

#include <charconv>
#include <system_error>

#include "s3/util/error.h"

namespace s3::util {
namespace {

const ArgSpec* find_spec(std::span<const ArgSpec> specs,
                         std::string_view name) {
  for (const ArgSpec& spec : specs) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

/// Validates `text` against the spec's kind; returns "" or the error.
std::string check_operand(const ArgSpec& spec, std::string_view text) {
  if (spec.kind == ArgKind::kInt) {
    long value = 0;
    return parse_integer(spec.name, text, value);
  }
  if (spec.kind == ArgKind::kReal) {
    double value = 0.0;
    return parse_number(spec.name, text, value);
  }
  return {};
}

}  // namespace

std::string parse_integer(std::string_view flag, std::string_view text,
                          long& value) {
  value = 0;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec == std::errc::result_out_of_range) {
    return "--" + std::string(flag) + ": integer out of range: \"" +
           std::string(text) + "\"";
  }
  if (ec != std::errc() || ptr != last) {
    return "--" + std::string(flag) + ": expected an integer, got \"" +
           std::string(text) + "\"";
  }
  return {};
}

std::string parse_number(std::string_view flag, std::string_view text,
                         double& value) {
  value = 0.0;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec == std::errc::result_out_of_range) {
    return "--" + std::string(flag) + ": number out of range: \"" +
           std::string(text) + "\"";
  }
  if (ec != std::errc() || ptr != last) {
    return "--" + std::string(flag) + ": expected a number, got \"" +
           std::string(text) + "\"";
  }
  return {};
}

long ParsedArgs::num(std::string_view key, long def) const {
  const auto it = values.find(key);
  if (it == values.end()) return def;
  long value = 0;
  const std::string err = parse_integer(key, it->second, value);
  S3_REQUIRE(err.empty(), "ParsedArgs::num: unvalidated operand");
  return value;
}

double ParsedArgs::real(std::string_view key, double def) const {
  const auto it = values.find(key);
  if (it == values.end()) return def;
  double value = 0.0;
  const std::string err = parse_number(key, it->second, value);
  S3_REQUIRE(err.empty(), "ParsedArgs::real: unvalidated operand");
  return value;
}

ArgParseResult parse_args(std::span<const ArgSpec> specs, int argc,
                          char** argv, int first) {
  ArgParseResult result;
  for (int i = first; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--help" || a == "-h") {
      result.want_help = true;
      return result;
    }
    if (a.rfind("--", 0) != 0) {
      result.error = "unexpected argument: " + std::string(a);
      result.error_kind = ArgErrorKind::kUsage;
      return result;
    }
    std::string_view key = a.substr(2);
    std::string value;
    bool have_value = false;
    const std::size_t eq = key.find('=');
    if (eq != std::string_view::npos) {
      value = std::string(key.substr(eq + 1));
      key = key.substr(0, eq);
      have_value = true;
    }
    const ArgSpec* spec = find_spec(specs, key);
    if (spec == nullptr) {
      result.error = "unknown flag: --" + std::string(key);
      result.error_kind = ArgErrorKind::kUsage;
      return result;
    }
    if (spec->kind == ArgKind::kFlag) {
      if (have_value) {
        result.error = "--" + std::string(key) + ": takes no value";
        result.error_kind = ArgErrorKind::kValue;
        return result;
      }
      result.args.values[std::string(key)] = "1";
      continue;
    }
    if (!have_value) {
      if (i + 1 >= argc || std::string_view(argv[i + 1]).rfind("--", 0) == 0) {
        result.error = "--" + std::string(key) + ": expected a value";
        result.error_kind = ArgErrorKind::kValue;
        return result;
      }
      // Assign through a temporary: GCC 12's -Wrestrict misfires on
      // inlined string::operator=(const char*) at -O3 (PR105651).
      value = std::string(argv[++i]);
    }
    const std::string err = check_operand(*spec, value);
    if (!err.empty()) {
      result.error = err;
      result.error_kind = ArgErrorKind::kValue;
      return result;
    }
    result.args.values[std::string(key)] = value;
  }
  return result;
}

std::string format_arg_specs(std::span<const ArgSpec> specs) {
  std::string out;
  for (const ArgSpec& spec : specs) {
    out += "  --";
    out += spec.name;
    switch (spec.kind) {
      case ArgKind::kInt:
        out += " N";
        break;
      case ArgKind::kReal:
        out += " X";
        break;
      case ArgKind::kString:
        out += " VALUE";
        break;
      case ArgKind::kFlag:
        break;
    }
    if (!spec.help.empty()) {
      out += "  ";
      out += spec.help;
    }
    out += "\n";
  }
  return out;
}

}  // namespace s3::util
