// Entropy and mutual-information kernels.
//
// Used by the §III-D analysis of application-profile stability: the
// paper measures the Normalized Mutual Information between a user's
// day-x application traffic vector and the cumulative vector over days
// x-1 .. x-n, and finds it plateaus at n ≈ 15 (Fig. 6).
#pragma once

#include <span>
#include <vector>

namespace s3::util {

/// Shannon entropy (nats) of a non-negative weight vector, normalized
/// internally to a distribution. Zero entries contribute 0. Returns 0
/// for an all-zero vector.
double entropy(std::span<const double> weights);

/// Shannon entropy (nats) of a joint distribution given as a row-major
/// `rows x cols` count/weight matrix.
double joint_entropy(std::span<const double> joint, std::size_t rows,
                     std::size_t cols);

/// Quantizes each value of `v` (assumed in [0, 1]) into one of `bins`
/// equal-width bins. Values at 1.0 land in the top bin.
std::vector<std::size_t> quantize(std::span<const double> v, std::size_t bins);

/// Discrete mutual information (nats) between paired categorical samples
/// xs[i], ys[i], with alphabet sizes nx and ny.
double mutual_information(std::span<const std::size_t> xs,
                          std::span<const std::size_t> ys, std::size_t nx,
                          std::size_t ny);

/// NMI between two same-length non-negative vectors, following §III-D:
/// both vectors are normalized to distributions over their categories,
/// each category's share is quantized into `bins` bins, the paired
/// (bin_x[i], bin_y[i]) samples over categories define the joint
/// distribution, and the MI is normalized by H(x side):
///   NMI = (H(X) + H(Y) - H(X,Y)) / H(X).
/// Returns 0 when H(X) is 0 (degenerate profile).
double nmi(std::span<const double> x, std::span<const double> y,
           std::size_t bins = 4);

}  // namespace s3::util
