#include "s3/util/entropy.h"

#include <algorithm>
#include <cmath>

#include "s3/util/error.h"

namespace s3::util {

double entropy(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    S3_REQUIRE(w >= 0.0, "entropy: negative weight");
    total += w;
  }
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double w : weights) {
    if (w > 0.0) {
      const double p = w / total;
      h -= p * std::log(p);
    }
  }
  return h;
}

double joint_entropy(std::span<const double> joint, std::size_t rows,
                     std::size_t cols) {
  S3_REQUIRE(joint.size() == rows * cols, "joint_entropy: size mismatch");
  return entropy(joint);
}

std::vector<std::size_t> quantize(std::span<const double> v,
                                  std::size_t bins) {
  S3_REQUIRE(bins >= 1, "quantize: bins must be >= 1");
  std::vector<std::size_t> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double clamped = std::clamp(v[i], 0.0, 1.0);
    auto b = static_cast<std::size_t>(clamped * static_cast<double>(bins));
    if (b == bins) b = bins - 1;  // value exactly 1.0
    out[i] = b;
  }
  return out;
}

double mutual_information(std::span<const std::size_t> xs,
                          std::span<const std::size_t> ys, std::size_t nx,
                          std::size_t ny) {
  S3_REQUIRE(xs.size() == ys.size(), "mutual_information: length mismatch");
  if (xs.empty()) return 0.0;
  std::vector<double> joint(nx * ny, 0.0);
  std::vector<double> px(nx, 0.0);
  std::vector<double> py(ny, 0.0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    S3_REQUIRE(xs[i] < nx && ys[i] < ny, "mutual_information: symbol range");
    joint[xs[i] * ny + ys[i]] += 1.0;
    px[xs[i]] += 1.0;
    py[ys[i]] += 1.0;
  }
  const double mi = entropy(px) + entropy(py) - entropy(joint);
  return mi > 0.0 ? mi : 0.0;  // clip tiny negative rounding
}

double nmi(std::span<const double> x, std::span<const double> y,
           std::size_t bins) {
  S3_REQUIRE(x.size() == y.size(), "nmi: length mismatch");
  if (x.empty()) return 0.0;

  auto normalize = [](std::span<const double> v) {
    double total = 0.0;
    for (double a : v) total += a;
    std::vector<double> out(v.size(), 0.0);
    if (total > 0.0) {
      for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[i] / total;
    }
    return out;
  };

  const std::vector<double> px = normalize(x);
  const std::vector<double> py = normalize(y);
  const std::vector<std::size_t> bx = quantize(px, bins);
  const std::vector<std::size_t> by = quantize(py, bins);

  // H(X) from the binned day-x profile.
  std::vector<double> hx_counts(bins, 0.0);
  for (std::size_t b : bx) hx_counts[b] += 1.0;
  const double hx = entropy(hx_counts);
  if (hx <= 0.0) return 0.0;

  const double mi = mutual_information(bx, by, bins, bins);
  return mi / hx;
}

}  // namespace s3::util
