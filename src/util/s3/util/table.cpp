#include "s3/util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "s3/util/error.h"

namespace s3::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  S3_REQUIRE(!header_.empty(), "TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  S3_REQUIRE(row.size() == header_.size(), "TextTable: row arity mismatch");
  rows_.push_back(std::move(row));
}

void TextTable::add_numeric_row(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace s3::util
