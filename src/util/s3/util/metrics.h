// Lightweight instrumentation bus.
//
// The runtime layers (sim engines, core policies, social model) report
// what they actually did — batches dispatched, cliques extracted, θ
// lookups served — through process-global counters, timers and
// histograms. Instruments are cheap enough for hot paths (relaxed
// atomics, cache-line padded) and are never unregistered, so call
// sites cache the pointer once:
//
//   static util::Counter* const evals =
//       util::metrics().counter("social.theta_evals");
//   evals->add();
//
// Counter values and histogram shapes are deterministic for a seeded
// run regardless of thread count (shards only ever *add*); timer
// durations are wall-clock and therefore not, but their call counts
// are. A pluggable MetricsSink receives snapshots on flush(); the
// default is none (metrics are pull-only via snapshot()/dump()).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "s3/util/thread_annotations.h"

namespace s3::util {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<std::uint64_t> value_{0};
};

/// Accumulated wall-clock duration + call count.
class Timer {
 public:
  void record_ns(std::uint64_t ns) noexcept {
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t total_ns() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double mean_ns() const noexcept {
    const std::uint64_t n = count();
    return n > 0 ? static_cast<double>(total_ns()) / static_cast<double>(n)
                 : 0.0;
  }
  void reset() noexcept {
    total_ns_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  alignas(64) std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// RAII timing of a scope into a Timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer) noexcept
      : timer_(timer), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    timer_->record_ns(static_cast<std::uint64_t>(ns));
  }

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// Log2-bucketed distribution of non-negative integer samples (batch
/// sizes, clique sizes, latencies in ns, ...). Bucket i counts samples
/// whose bit width is i, i.e. bucket 0 holds value 0, bucket i holds
/// [2^(i-1), 2^i).
///
/// Internally each major (log2) bucket is split into kSub log-linear
/// sub-buckets of equal width, bounding the relative quantile error to
/// ~1/kSub regardless of magnitude; percentile() interpolates within
/// the sub-bucket the requested rank falls in. The public bucket
/// granularity (`bucket_of`, `bucket`) stays log2.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 41;  // values up to 2^40 - 1
  static constexpr std::size_t kSub = 16;      // sub-buckets per bucket

  void record(std::uint64_t v) noexcept {
    const std::size_t b = bucket_of(v);
    fine_[b * kSub + sub_of(v, b)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Racy max is fine: the loop converges and the final value is the
    // true maximum of all recorded samples.
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n > 0 ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
  }
  std::uint64_t bucket(std::size_t i) const {
    std::uint64_t n = 0;
    for (std::size_t s = 0; s < kSub; ++s) {
      n += fine_[i * kSub + s].load(std::memory_order_relaxed);
    }
    return n;
  }

  /// Estimated value at percentile p (0..100), linearly interpolated
  /// within the sub-bucket the rank lands in and clamped to max().
  /// Concurrent writers make the walk a momentary snapshot, same as
  /// count()/mean(). Returns 0 on an empty histogram.
  double percentile(double p) const noexcept;

  static std::size_t bucket_of(std::uint64_t v) noexcept {
    std::size_t b = 0;
    while (v > 0 && b + 1 < kBuckets) {
      v >>= 1;
      ++b;
    }
    return b;
  }

  void reset() noexcept {
    for (auto& b : fine_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  // Sub-bucket of v within major bucket b. Bucket b >= 1 spans
  // [2^(b-1), 2^b); each sub-bucket covers width/kSub of it (at least
  // 1, so narrow low buckets just use their first `width` cells).
  // Values saturated into the last major bucket clamp to its last cell.
  static std::size_t sub_of(std::uint64_t v, std::size_t b) noexcept {
    if (b == 0) return 0;
    const std::uint64_t lo = std::uint64_t{1} << (b - 1);
    const std::uint64_t step = lo / kSub > 0 ? lo / kSub : 1;
    const std::uint64_t s = (v - lo) / step;
    return s < kSub ? static_cast<std::size_t>(s) : kSub - 1;
  }

  alignas(64) std::atomic<std::uint64_t> fine_[kBuckets * kSub]{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> max_{0};
};

enum class MetricKind : std::uint8_t { kCounter, kTimer, kHistogram };

/// One metric's state at snapshot time. For counters only `count` is
/// meaningful; timers use (count, total=ns, mean=ns/call); histograms
/// use (count, total=sum, mean, max, p50/p95/p99).
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;
  std::uint64_t total = 0;
  double mean = 0.0;
  std::uint64_t max = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Receives registry snapshots on MetricsRegistry::flush().
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void write(std::span<const MetricSample> samples) = 0;
};

/// Sink that renders "name kind count total mean max" lines to a
/// stream (the format dump() uses).
class StreamSink final : public MetricsSink {
 public:
  explicit StreamSink(std::ostream& out) : out_(&out) {}
  void write(std::span<const MetricSample> samples) override;

 private:
  std::ostream* out_;
};

class MetricsRegistry {
 public:
  /// Returns the instrument registered under `name`, creating it on
  /// first use. Pointers remain valid for the registry's lifetime;
  /// registering the same name with a different kind throws.
  Counter* counter(std::string_view name) S3_EXCLUDES(mu_);
  Timer* timer(std::string_view name) S3_EXCLUDES(mu_);
  Histogram* histogram(std::string_view name) S3_EXCLUDES(mu_);

  /// All instruments, sorted by name (deterministic output order).
  std::vector<MetricSample> snapshot() const S3_EXCLUDES(mu_);

  /// Writes the snapshot as text lines, one metric per line.
  void dump(std::ostream& out) const S3_EXCLUDES(mu_);

  /// Zeroes every instrument (pointers stay valid). Tests use this to
  /// isolate per-run counter assertions.
  void reset() S3_EXCLUDES(mu_);

  void set_sink(std::shared_ptr<MetricsSink> sink) S3_EXCLUDES(mu_);
  /// Pushes a snapshot to the sink, if any.
  void flush() const S3_EXCLUDES(mu_);

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Timer> timer;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(std::string_view name, MetricKind kind) S3_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_ S3_GUARDED_BY(mu_);
  std::shared_ptr<MetricsSink> sink_ S3_GUARDED_BY(mu_);
};

/// The process-global instrumentation bus.
MetricsRegistry& metrics();

}  // namespace s3::util
