#include "s3/util/cdf.h"

#include <algorithm>

#include "s3/util/error.h"
#include "s3/util/stats.h"

namespace s3::util {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : samples_(std::move(samples)), sorted_(false) {}

void EmpiricalCdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void EmpiricalCdf::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void EmpiricalCdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::quantile(double q) const {
  ensure_sorted();
  return util::quantile(samples_, q);
}

double EmpiricalCdf::min() const {
  S3_REQUIRE(!samples_.empty(), "min of empty CDF");
  ensure_sorted();
  return samples_.front();
}

double EmpiricalCdf::max() const {
  S3_REQUIRE(!samples_.empty(), "max of empty CDF");
  ensure_sorted();
  return samples_.back();
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(
    std::size_t points) const {
  S3_REQUIRE(points >= 2, "curve needs at least 2 points");
  std::vector<std::pair<double, double>> out;
  if (samples_.empty()) return out;
  ensure_sorted();
  const double lo = samples_.front();
  const double hi = samples_.back();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

std::vector<double> EmpiricalCdf::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

}  // namespace s3::util
