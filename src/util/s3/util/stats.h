// Streaming and batch statistics used across analyses and benches.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace s3::util {

/// Welford's online mean/variance accumulator. Numerically stable; O(1)
/// memory; mergeable (parallel-friendly).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  /// Merges another accumulator (Chan et al. parallel update).
  void merge(const RunningStats& o) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n - 1 denominator); 0 for fewer than two samples.
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Half-width of the normal-approximation 95% confidence interval of
  /// the mean: 1.96 * s / sqrt(n). 0 for fewer than two samples.
  double ci95_halfwidth() const noexcept {
    return n_ > 1 ? 1.96 * stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of a span; 0 for empty input.
double mean(std::span<const double> xs) noexcept;

/// Sample variance (n-1); 0 for fewer than two samples.
double variance(std::span<const double> xs) noexcept;

double stddev(std::span<const double> xs) noexcept;

/// Linear-interpolation quantile, q in [0, 1]. Sorts a copy; 0 for empty
/// input.
double quantile(std::span<const double> xs, double q);

/// Pearson correlation coefficient; 0 if either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

}  // namespace s3::util
