// Deterministic random-number utilities.
//
// All stochastic components of the library (trace synthesis, k-means
// seeding, gap-statistic reference sets, ...) draw from an explicitly
// plumbed Rng so that every experiment is reproducible bit-for-bit from
// its seed. Library code never touches global RNG state or the wall
// clock.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <span>
#include <vector>

#include "s3/util/error.h"

namespace s3::util {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used to derive independent
/// child seeds from a master seed (so subsystems can be re-seeded without
/// correlations) and as the seed sequence for the heavier mt19937_64.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Convenience wrapper over std::mt19937_64 with the distributions the
/// library needs. Cheap to pass by reference; not thread-safe (use one
/// Rng per thread / per subsystem).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(SplitMix64(seed).next()) {}

  /// Derives an independent child generator; successive calls yield
  /// uncorrelated streams.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() noexcept { return engine_; }

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    S3_REQUIRE(lo <= hi, "uniform: lo > hi");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    S3_REQUIRE(lo <= hi, "uniform_int: lo > hi");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n).
  std::size_t index(std::size_t n) {
    S3_REQUIRE(n > 0, "index: empty range");
    return static_cast<std::size_t>(
        std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_));
  }

  bool bernoulli(double p) {
    S3_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli: p outside [0,1]");
    return std::bernoulli_distribution(p)(engine_);
  }

  double normal(double mean, double stddev) {
    S3_REQUIRE(stddev >= 0.0, "normal: negative stddev");
    if (stddev == 0.0) return mean;
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  double exponential(double rate) {
    S3_REQUIRE(rate > 0.0, "exponential: rate must be positive");
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Log-normal parameterized by the underlying normal's (mu, sigma).
  double lognormal(double mu, double sigma) {
    S3_REQUIRE(sigma >= 0.0, "lognormal: negative sigma");
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  std::int64_t poisson(double mean) {
    S3_REQUIRE(mean >= 0.0, "poisson: negative mean");
    if (mean == 0.0) return 0;
    return std::poisson_distribution<std::int64_t>(mean)(engine_);
  }

  /// Pareto with scale x_m > 0 and shape alpha > 0 (heavy-tailed traffic).
  double pareto(double x_m, double alpha) {
    S3_REQUIRE(x_m > 0.0 && alpha > 0.0, "pareto: bad parameters");
    const double u = uniform(std::numeric_limits<double>::min(), 1.0);
    return x_m / std::pow(u, 1.0 / alpha);
  }

  /// Samples an index according to non-negative `weights` (need not sum
  /// to 1). At least one weight must be positive.
  std::size_t weighted_index(std::span<const double> weights);

  /// Samples a point on the probability simplex: Dirichlet(alpha_i).
  std::vector<double> dirichlet(std::span<const double> alpha);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Draws `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::mt19937_64 engine_;
};

}  // namespace s3::util
