// Empirical cumulative distribution functions.
//
// Several paper figures (Figs. 2, 3, 5) are CDFs over per-slot or
// per-user statistics; EmpiricalCdf collects the samples and renders
// the curve as (x, F(x)) points for bench output.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace s3::util {

class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> samples);

  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  /// F(x) = P[X <= x]; 0 for an empty CDF.
  double at(double x) const;

  /// Inverse CDF via linear-interpolation quantile, q in [0, 1].
  double quantile(double q) const;

  double min() const;
  double max() const;

  /// Renders the curve as `points` (x, F(x)) pairs with x spaced evenly
  /// over [min, max] — the series a plotting script would consume.
  std::vector<std::pair<double, double>> curve(std::size_t points = 50) const;

  /// Sorted copy of the underlying samples.
  std::vector<double> sorted_samples() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace s3::util
