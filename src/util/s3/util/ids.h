// Entity identifiers shared across the library.
//
// Dense 0-based indices (not hashes): every container keyed by an id is
// a flat vector. Hashed MAC addresses from a real trace are mapped to
// dense UserIds at ingest (s3::trace::TraceBuilder).
#pragma once

#include <cstdint>
#include <limits>

namespace s3 {

using UserId = std::uint32_t;
using ApId = std::uint32_t;
using ControllerId = std::uint32_t;
using BuildingId = std::uint32_t;
using GroupId = std::uint32_t;

inline constexpr UserId kInvalidUser = std::numeric_limits<UserId>::max();
inline constexpr ApId kInvalidAp = std::numeric_limits<ApId>::max();
inline constexpr ControllerId kInvalidController =
    std::numeric_limits<ControllerId>::max();
inline constexpr GroupId kInvalidGroup = std::numeric_limits<GroupId>::max();

/// Canonical unordered user pair (a < b), used as a key for pairwise
/// social statistics.
struct UserPair {
  UserId a;
  UserId b;

  constexpr UserPair(UserId x, UserId y) noexcept
      : a(x < y ? x : y), b(x < y ? y : x) {}

  constexpr bool operator==(const UserPair&) const noexcept = default;
  constexpr auto operator<=>(const UserPair&) const noexcept = default;
};

struct UserPairHash {
  std::size_t operator()(const UserPair& p) const noexcept {
    // 64-bit mix of the packed pair.
    std::uint64_t z = (static_cast<std::uint64_t>(p.a) << 32) | p.b;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

}  // namespace s3
