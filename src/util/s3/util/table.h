// Plain-text table and CSV rendering for bench/example output.
//
// Figure benches print labelled series; table benches print aligned
// columns. Keeping the rendering here keeps bench binaries tiny.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace s3::util {

/// Column-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats a row of doubles with `precision` digits.
  void add_numeric_row(const std::vector<double>& row, int precision = 4);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with single-space-padded columns and a rule under the header.
  std::string to_string() const;

  /// Renders as RFC-4180-ish CSV (quotes fields containing , " or \n).
  std::string to_csv() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (bench output helper).
std::string fmt(double v, int precision = 4);

/// Escapes one CSV field.
std::string csv_escape(const std::string& field);

}  // namespace s3::util
