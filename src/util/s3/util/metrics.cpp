#include "s3/util/metrics.h"

#include <algorithm>
#include <ostream>

#include "s3/util/error.h"

namespace s3::util {

double Histogram::percentile(double p) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = (p / 100.0) * static_cast<double>(n);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    for (std::size_t s = 0; s < kSub; ++s) {
      const std::uint64_t c = fine_[b * kSub + s].load(std::memory_order_relaxed);
      if (c > 0 && static_cast<double>(cum + c) >= target) {
        // Sub-bucket value range [lo, hi): interpolate by how far into
        // this cell's population the target rank sits.
        double lo = 0.0, hi = 1.0;
        if (b > 0) {
          const std::uint64_t base = std::uint64_t{1} << (b - 1);
          const std::uint64_t step = base / kSub > 0 ? base / kSub : 1;
          lo = static_cast<double>(base + s * step);
          const double bucket_hi = static_cast<double>(base) * 2.0;
          hi = std::min(lo + static_cast<double>(step), bucket_hi);
        }
        const double frac =
            std::max(0.0, target - static_cast<double>(cum)) /
            static_cast<double>(c);
        const double v = lo + frac * (hi - lo);
        return std::min(v, static_cast<double>(max()));
      }
      cum += c;
    }
  }
  return static_cast<double>(max());
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                               MetricKind kind) {
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    S3_REQUIRE(it->second.kind == kind,
               "metrics: name already registered with a different kind: " +
                   std::string(name));
    return it->second;
  }
  Entry e;
  e.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      e.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kTimer:
      e.timer = std::make_unique<Timer>();
      break;
    case MetricKind::kHistogram:
      e.histogram = std::make_unique<Histogram>();
      break;
  }
  return entries_.emplace(std::string(name), std::move(e)).first->second;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  MutexLock lock(mu_);
  return entry(name, MetricKind::kCounter).counter.get();
}

Timer* MetricsRegistry::timer(std::string_view name) {
  MutexLock lock(mu_);
  return entry(name, MetricKind::kTimer).timer.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  MutexLock lock(mu_);
  return entry(name, MetricKind::kHistogram).histogram.get();
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  MutexLock lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {  // std::map: already sorted
    MetricSample s;
    s.name = name;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.count = e.counter->value();
        break;
      case MetricKind::kTimer:
        s.count = e.timer->count();
        s.total = e.timer->total_ns();
        s.mean = e.timer->mean_ns();
        break;
      case MetricKind::kHistogram:
        s.count = e.histogram->count();
        s.total = e.histogram->sum();
        s.mean = e.histogram->mean();
        s.max = e.histogram->max();
        s.p50 = e.histogram->percentile(50.0);
        s.p95 = e.histogram->percentile(95.0);
        s.p99 = e.histogram->percentile(99.0);
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::dump(std::ostream& out) const {
  StreamSink sink(out);
  const std::vector<MetricSample> samples = snapshot();
  sink.write(samples);
}

void MetricsRegistry::reset() {
  MutexLock lock(mu_);
  for (auto& [name, e] : entries_) {
    switch (e.kind) {
      case MetricKind::kCounter:
        e.counter->reset();
        break;
      case MetricKind::kTimer:
        e.timer->reset();
        break;
      case MetricKind::kHistogram:
        e.histogram->reset();
        break;
    }
  }
}

void MetricsRegistry::set_sink(std::shared_ptr<MetricsSink> sink) {
  MutexLock lock(mu_);
  sink_ = std::move(sink);
}

void MetricsRegistry::flush() const {
  std::shared_ptr<MetricsSink> sink;
  {
    MutexLock lock(mu_);
    sink = sink_;
  }
  if (!sink) return;
  const std::vector<MetricSample> samples = snapshot();
  sink->write(samples);
}

void StreamSink::write(std::span<const MetricSample> samples) {
  for (const MetricSample& s : samples) {
    *out_ << s.name;
    switch (s.kind) {
      case MetricKind::kCounter:
        *out_ << " counter " << s.count;
        break;
      case MetricKind::kTimer:
        *out_ << " timer count=" << s.count << " total_ns=" << s.total
              << " mean_ns=" << s.mean;
        break;
      case MetricKind::kHistogram:
        *out_ << " histogram count=" << s.count << " sum=" << s.total
              << " mean=" << s.mean << " max=" << s.max << " p50=" << s.p50
              << " p95=" << s.p95 << " p99=" << s.p99;
        break;
    }
    *out_ << "\n";
  }
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace s3::util
