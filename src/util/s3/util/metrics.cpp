#include "s3/util/metrics.h"

#include <algorithm>
#include <ostream>

#include "s3/util/error.h"

namespace s3::util {

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                               MetricKind kind) {
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    S3_REQUIRE(it->second.kind == kind,
               "metrics: name already registered with a different kind: " +
                   std::string(name));
    return it->second;
  }
  Entry e;
  e.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      e.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kTimer:
      e.timer = std::make_unique<Timer>();
      break;
    case MetricKind::kHistogram:
      e.histogram = std::make_unique<Histogram>();
      break;
  }
  return entries_.emplace(std::string(name), std::move(e)).first->second;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  MutexLock lock(mu_);
  return entry(name, MetricKind::kCounter).counter.get();
}

Timer* MetricsRegistry::timer(std::string_view name) {
  MutexLock lock(mu_);
  return entry(name, MetricKind::kTimer).timer.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  MutexLock lock(mu_);
  return entry(name, MetricKind::kHistogram).histogram.get();
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  MutexLock lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {  // std::map: already sorted
    MetricSample s;
    s.name = name;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.count = e.counter->value();
        break;
      case MetricKind::kTimer:
        s.count = e.timer->count();
        s.total = e.timer->total_ns();
        s.mean = e.timer->mean_ns();
        break;
      case MetricKind::kHistogram:
        s.count = e.histogram->count();
        s.total = e.histogram->sum();
        s.mean = e.histogram->mean();
        s.max = e.histogram->max();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::dump(std::ostream& out) const {
  StreamSink sink(out);
  const std::vector<MetricSample> samples = snapshot();
  sink.write(samples);
}

void MetricsRegistry::reset() {
  MutexLock lock(mu_);
  for (auto& [name, e] : entries_) {
    switch (e.kind) {
      case MetricKind::kCounter:
        e.counter->reset();
        break;
      case MetricKind::kTimer:
        e.timer->reset();
        break;
      case MetricKind::kHistogram:
        e.histogram->reset();
        break;
    }
  }
}

void MetricsRegistry::set_sink(std::shared_ptr<MetricsSink> sink) {
  MutexLock lock(mu_);
  sink_ = std::move(sink);
}

void MetricsRegistry::flush() const {
  std::shared_ptr<MetricsSink> sink;
  {
    MutexLock lock(mu_);
    sink = sink_;
  }
  if (!sink) return;
  const std::vector<MetricSample> samples = snapshot();
  sink->write(samples);
}

void StreamSink::write(std::span<const MetricSample> samples) {
  for (const MetricSample& s : samples) {
    *out_ << s.name;
    switch (s.kind) {
      case MetricKind::kCounter:
        *out_ << " counter " << s.count;
        break;
      case MetricKind::kTimer:
        *out_ << " timer count=" << s.count << " total_ns=" << s.total
              << " mean_ns=" << s.mean;
        break;
      case MetricKind::kHistogram:
        *out_ << " histogram count=" << s.count << " sum=" << s.total
              << " mean=" << s.mean << " max=" << s.max;
        break;
    }
    *out_ << "\n";
  }
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace s3::util
