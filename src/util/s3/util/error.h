// Precondition / invariant checking for the s3lb library.
//
// Library-wide convention (see DESIGN.md §5): caller bugs (violated
// preconditions) throw std::invalid_argument via S3_REQUIRE; internal
// invariant violations throw std::logic_error via S3_ASSERT. Expected
// runtime fallibility (I/O, infeasible placements) is reported through
// return values, never exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace s3::util {

[[noreturn]] inline void throw_require_failure(const char* expr,
                                               const char* file, int line,
                                               const std::string& msg) {
  throw std::invalid_argument(std::string("S3_REQUIRE failed: ") + expr +
                              " at " + file + ":" + std::to_string(line) +
                              (msg.empty() ? "" : (": " + msg)));
}

[[noreturn]] inline void throw_assert_failure(const char* expr,
                                              const char* file, int line,
                                              const std::string& msg) {
  throw std::logic_error(std::string("S3_ASSERT failed: ") + expr + " at " +
                         file + ":" + std::to_string(line) +
                         (msg.empty() ? "" : (": " + msg)));
}

}  // namespace s3::util

// Validates a caller-supplied argument; throws std::invalid_argument.
#define S3_REQUIRE(expr, msg)                                              \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::s3::util::throw_require_failure(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                      \
  } while (false)

// Checks an internal invariant; throws std::logic_error.
#define S3_ASSERT(expr, msg)                                              \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::s3::util::throw_assert_failure(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                     \
  } while (false)

// Debug-build-only invariant check: compiled out under NDEBUG. For
// contracts that are *also* tracked by a counted stat on the release
// path (e.g. the replay engine's candidate-set validation), so that a
// production run degrades observably instead of aborting.
#ifdef NDEBUG
#define S3_DEBUG_ASSERT(expr, msg) \
  do {                             \
  } while (false)
#else
#define S3_DEBUG_ASSERT(expr, msg) S3_ASSERT(expr, msg)
#endif
