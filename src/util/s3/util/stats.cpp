#include "s3/util/stats.h"

#include <algorithm>

#include "s3/util/error.h"

namespace s3::util {

void RunningStats::merge(const RunningStats& o) noexcept {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double delta = o.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(o.n_);
  const double total = n + m;
  mean_ += delta * m / total;
  m2_ += o.m2_ + delta * delta * n * m / total;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double quantile(std::span<const double> xs, double q) {
  S3_REQUIRE(q >= 0.0 && q <= 1.0, "quantile: q outside [0,1]");
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  S3_REQUIRE(xs.size() == ys.size(), "pearson: length mismatch");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace s3::util
