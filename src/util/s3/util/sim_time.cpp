#include "s3/util/sim_time.h"

#include <cstdio>

namespace s3::util {

std::string SimTime::to_string() const {
  const std::int64_t d = day();
  const std::int64_t sod = second_of_day();
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%lld %02d:%02d:%02d",
                static_cast<long long>(d), static_cast<int>(sod / 3600),
                static_cast<int>((sod / 60) % 60), static_cast<int>(sod % 60));
  return buf;
}

}  // namespace s3::util
