// Strongly-typed simulation time.
//
// All trace timestamps and simulation clocks are integral seconds since
// the trace epoch (day 0, 00:00). Windows throughout the library are
// half-open intervals [start, start + width).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace s3::util {

/// Seconds since trace epoch. A thin strong type: arithmetic is explicit
/// through named helpers so that unit mistakes (seconds vs minutes) are
/// hard to write.
class SimTime {
 public:
  constexpr SimTime() noexcept = default;
  constexpr explicit SimTime(std::int64_t seconds) noexcept
      : seconds_(seconds) {}

  static constexpr SimTime from_seconds(std::int64_t s) noexcept {
    return SimTime(s);
  }
  static constexpr SimTime from_minutes(std::int64_t m) noexcept {
    return SimTime(m * 60);
  }
  static constexpr SimTime from_hours(std::int64_t h) noexcept {
    return SimTime(h * 3600);
  }
  static constexpr SimTime from_days(std::int64_t d) noexcept {
    return SimTime(d * 86400);
  }
  /// Day `d`, local time hh:mm:ss within that day.
  static constexpr SimTime at(std::int64_t d, int hh, int mm = 0,
                              int ss = 0) noexcept {
    return SimTime(d * 86400 + hh * 3600 + mm * 60 + ss);
  }

  constexpr std::int64_t seconds() const noexcept { return seconds_; }
  constexpr double minutes() const noexcept { return seconds_ / 60.0; }
  constexpr double hours() const noexcept { return seconds_ / 3600.0; }

  /// Day index since epoch (floor; negative times round toward -inf).
  constexpr std::int64_t day() const noexcept {
    return seconds_ >= 0 ? seconds_ / 86400 : (seconds_ - 86399) / 86400;
  }
  /// Seconds into the current day, in [0, 86400).
  constexpr std::int64_t second_of_day() const noexcept {
    const std::int64_t s = seconds_ % 86400;
    return s >= 0 ? s : s + 86400;
  }
  /// Hour of day in [0, 24).
  constexpr int hour_of_day() const noexcept {
    return static_cast<int>(second_of_day() / 3600);
  }

  /// "d HH:MM:SS" rendering for logs and bench output.
  std::string to_string() const;

  constexpr auto operator<=>(const SimTime&) const noexcept = default;

  constexpr SimTime operator+(SimTime rhs) const noexcept {
    return SimTime(seconds_ + rhs.seconds_);
  }
  constexpr SimTime operator-(SimTime rhs) const noexcept {
    return SimTime(seconds_ - rhs.seconds_);
  }
  constexpr SimTime& operator+=(SimTime rhs) noexcept {
    seconds_ += rhs.seconds_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime rhs) noexcept {
    seconds_ -= rhs.seconds_;
    return *this;
  }

 private:
  std::int64_t seconds_ = 0;
};

/// Half-open time interval [begin, end).
struct TimeInterval {
  SimTime begin;
  SimTime end;

  constexpr bool contains(SimTime t) const noexcept {
    return begin <= t && t < end;
  }
  constexpr SimTime duration() const noexcept { return end - begin; }
  constexpr bool empty() const noexcept { return end <= begin; }
  /// Length of the overlap with [b, e), in seconds (>= 0).
  constexpr std::int64_t overlap_seconds(SimTime b, SimTime e) const noexcept {
    const std::int64_t lo = begin.seconds() > b.seconds() ? begin.seconds()
                                                          : b.seconds();
    const std::int64_t hi =
        end.seconds() < e.seconds() ? end.seconds() : e.seconds();
    return hi > lo ? hi - lo : 0;
  }
};

}  // namespace s3::util
