// Declarative command-line parsing shared by the s3lb CLI and the
// bench binaries.
//
// Each subcommand declares a table of `ArgSpec{name, kind, help}` and
// hands argv to `parse_args`. The parser accepts both `--name value`
// and `--name=value`, validates typed operands eagerly (a typoed
// `--users 12abc` fails at parse time instead of silently truncating),
// and rejects unknown flags and stray positionals — so `s3lb replay`,
// `s3lb check`, and every bench report the same errors the same way.
//
// Errors are returned, not printed: callers own the exit-code policy
// (the CLI dies with "error: ..." on bad values but keeps usage-class
// failures on exit 2; benches print usage and exit 2 for everything).
#pragma once

#include <map>
#include <span>
#include <string>
#include <string_view>

namespace s3::util {

/// Operand type of one flag. kFlag takes no operand (presence only);
/// the typed kinds require one and validate it during parsing.
enum class ArgKind {
  kInt,
  kReal,
  kString,
  kFlag,
};

/// One row of a subcommand's flag table. `name` is spelled without the
/// leading "--".
struct ArgSpec {
  std::string_view name;
  ArgKind kind;
  std::string_view help;
};

/// Strict integer parse: the whole token must be a decimal integer in
/// range. Returns an error message naming the flag ("" on success).
/// strtol's silent `12abc` -> 12 and out-of-range saturation both
/// masked typos.
std::string parse_integer(std::string_view flag, std::string_view text,
                          long& value);

/// Strict floating-point parse; same contract as parse_integer.
std::string parse_number(std::string_view flag, std::string_view text,
                         double& value);

/// Validated flag values. Typed accessors cannot fail: the operands
/// were checked against their declared kind during parse_args.
struct ParsedArgs {
  std::map<std::string, std::string, std::less<>> values;

  bool has(std::string_view key) const {
    return values.find(key) != values.end();
  }
  std::string get(std::string_view key, const std::string& def = "") const {
    const auto it = values.find(key);
    return it == values.end() ? def : it->second;
  }
  long num(std::string_view key, long def) const;
  double real(std::string_view key, double def) const;
};

/// How a parse failed — callers map the class to their exit policy.
enum class ArgErrorKind {
  kNone,   ///< success
  kUsage,  ///< unknown flag or stray positional argument
  kValue,  ///< typed operand malformed, out of range, or missing
};

struct ArgParseResult {
  ParsedArgs args;
  std::string error;  ///< empty on success
  ArgErrorKind error_kind = ArgErrorKind::kNone;
  bool want_help = false;  ///< --help / -h seen (parsing stops there)

  bool ok() const { return error_kind == ArgErrorKind::kNone; }
};

/// Parses argv[first..argc) against the spec table. Stops at the first
/// error; `--help` / `-h` short-circuits with want_help set.
ArgParseResult parse_args(std::span<const ArgSpec> specs, int argc,
                          char** argv, int first);

/// One "  --name KIND  help" line per spec, for usage text.
std::string format_arg_specs(std::span<const ArgSpec> specs);

}  // namespace s3::util
