// A one-byte test-and-test-and-set spinlock.
//
// The concurrent pair store keys its write serialization to individual
// hash buckets; a std::mutex per bucket would cost 40 bytes each and
// park threads in the kernel for critical sections of a few dozen
// instructions. This lock is a single byte, spins in user space with a
// relaxed read loop between exchange attempts (so waiters hammer a
// shared cache line only when it may have changed), and carries the
// same capability annotations as util::Mutex so clang's
// -Wthread-safety analysis covers bucket-locked code paths.
//
// Use only around short, bounded critical sections (counter bumps,
// cell claims). Anything that can block or allocate belongs under a
// real mutex.
#pragma once

#include <atomic>

#include "s3/util/thread_annotations.h"

namespace s3::util {

class S3_CAPABILITY("mutex") Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() noexcept S3_ACQUIRE() {
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      // Test-and-test-and-set: wait on a plain load so the cache line
      // stays shared while the holder works.
      while (locked_.load(std::memory_order_relaxed)) {
      }
    }
  }

  bool try_lock() noexcept S3_TRY_ACQUIRE(true) {
    return !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept S3_RELEASE() {
    locked_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> locked_{false};
};

/// Scoped lock for Spinlock (std::lock_guard is not annotated).
class S3_SCOPED_CAPABILITY SpinlockGuard {
 public:
  explicit SpinlockGuard(Spinlock& lock) S3_ACQUIRE(lock) : lock_(&lock) {
    lock_->lock();
  }
  ~SpinlockGuard() S3_RELEASE() { lock_->unlock(); }
  SpinlockGuard(const SpinlockGuard&) = delete;
  SpinlockGuard& operator=(const SpinlockGuard&) = delete;

 private:
  Spinlock* lock_;
};

}  // namespace s3::util
