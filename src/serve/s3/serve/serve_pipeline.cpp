#include "s3/serve/serve_pipeline.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "s3/util/error.h"
#include "s3/util/metrics.h"

namespace s3::serve {

ServePipeline::ServePipeline(const wlan::Network* net,
                             const social::SocialIndexModel* base,
                             ServeConfig config)
    : net_(net),
      config_(std::move(config)),
      shared_(base, config_.expected_live_pairs) {
  S3_REQUIRE(net_ != nullptr, "ServePipeline: null network");
  health_ = std::make_unique<fault::HealthBoard>(net_->num_controllers());
  core::SelectorSpec spec;
  spec.llf_metric = config_.llf_metric;
  spec.random_seed = config_.random_seed;
  spec.net = net_;
  spec.model = &shared_;
  spec.base_model = base;
  spec.s3 = config_.s3;
  spec.online.s3 = config_.s3;
  spec.online.co_leave_window = config_.co_leave_window;
  spec.online.min_encounter_overlap = config_.min_encounter_overlap;
  const auto factory = core::make_selector_factory(config_.policy, spec);
  {
    social::CliqueMaintainerConfig mc;
    mc.theta_threshold = config_.s3.theta_threshold;
    mc.clique = config_.s3.clique;
    util::MutexLock social(social_.mu);
    social_.view = social::CliqueMaintainer(0, mc);
  }
  user_ap_ = std::vector<std::atomic<ApId>>(shared_.num_users());
  for (std::atomic<ApId>& slot : user_ap_) {
    slot.store(kInvalidAp, std::memory_order_relaxed);
  }
  domains_.reserve(net_->num_controllers());
  presence_.reserve(net_->num_controllers());
  for (ControllerId c = 0; c < net_->num_controllers(); ++c) {
    auto d = std::make_unique<Domain>();
    d->selector = factory->create(c);
    d->tracker = std::make_unique<sim::ApLoadTracker>(*net_);
    domains_.push_back(std::move(d));
    presence_.push_back(std::make_unique<PresenceTable>(
        config_.co_leave_window, config_.min_encounter_overlap));
  }
}

ServePipeline::~ServePipeline() = default;

PlaceResult ServePipeline::place(const PlaceRequest& req) {
  S3_REQUIRE(req.building < net_->num_buildings(),
             "serve: building id out of range");
  S3_REQUIRE(req.user != kInvalidUser, "serve: invalid user id");
  const auto t0 = std::chrono::steady_clock::now();
  const ControllerId domain_id = net_->controller_of_building(req.building);

  // Reserve the session id first so a concurrent duplicate place() is
  // rejected instead of double-associated. The placeholder (ap ==
  // kInvalidAp) also makes a racing depart() for this id a no-op.
  if (!registry_.reserve(req.id, req.user)) {
    rejected_duplicate_id_.fetch_add(1, std::memory_order_relaxed);
    return {};
  }

  sim::Arrival arrival;
  arrival.session_index = next_session_.fetch_add(1, std::memory_order_relaxed);
  arrival.user = req.user;
  arrival.controller = domain_id;
  arrival.connect = req.when;
  arrival.demand_mbps = req.demand_mbps;
  arrival.candidates =
      wlan::candidate_aps(*net_, config_.radio, req.building, req.pos);
  // Domain invariant: every AP this pipeline touches for the session
  // belongs to `domain_id` (presence maps and trackers are per-domain).
  // Dead APs are pruned exactly like ControllerEngine::flush does.
  std::erase_if(arrival.candidates, [&](ApId ap) {
    if (net_->controller_of_ap(ap) != domain_id) return true;
    return config_.injector != nullptr &&
           config_.injector->ap_down(ap, req.when);
  });
  if (arrival.candidates.empty()) {
    rejected_no_candidate_.fetch_add(1, std::memory_order_relaxed);
    registry_.cancel(req.id);
    return {};
  }

  PlaceResult result;
  Domain& d = *domains_[domain_id];
  {
    util::MutexLock hold(d.mu);
    if (d.selector->uses_social_model() &&
        req.user >= shared_.num_users()) {
      rejected_unknown_user_.fetch_add(1, std::memory_order_relaxed);
      registry_.cancel(req.id);
      return {};
    }
    sim::BatchRequest request;
    request.arrivals = {&arrival, 1};
    if (config_.injector != nullptr) {
      const bool model_out = !config_.injector->model_available(req.when);
      request.faults.model_available = !model_out;
      request.faults.clique_node_budget =
          config_.injector->clique_budget(req.when);
      request.faults.force_fallback = d.degradation.on_batch_start(
          model_out && d.selector->uses_social_model());
    }
    sim::BatchResult dispatched =
        d.selector->place_batch(request, *d.tracker);
    S3_ASSERT(dispatched.placements.size() == 1,
              "serve: policy returned wrong batch arity");
    if (config_.injector != nullptr && !request.faults.force_fallback) {
      d.degradation.on_batch_end(dispatched.full_fidelity);
    }
    const ApId ap = dispatched.placements[0];
    S3_ASSERT(std::find(arrival.candidates.begin(), arrival.candidates.end(),
                        ap) != arrival.candidates.end(),
              "serve: policy picked an AP outside the candidate set");
    result.placed = true;
    result.ap = ap;
    result.fallback = request.faults.force_fallback || !dispatched.full_fidelity;
    result.overloaded = d.tracker->headroom_mbps(ap) < req.demand_mbps;
    d.tracker->associate(arrival.session_index, ap, req.user,
                         req.demand_mbps);
    d.selector->on_associate(arrival, ap);
    if (config_.injector != nullptr) {
      health_->publish(domain_id, d.degradation.state());
    }
  }

  // Presence must be visible before the session id is committed: a
  // depart() can only race us after the commit, and it expects the
  // presence entry to exist.
  presence_[domain_id]->arrive(result.ap, arrival.session_index, req.user,
                               req.when);
  LiveSession session;
  session.session_index = arrival.session_index;
  session.user = req.user;
  session.ap = result.ap;
  session.domain = domain_id;
  session.demand_mbps = req.demand_mbps;
  session.since = req.when;
  registry_.commit(req.id, session);
  if (req.user < user_ap_.size()) {
    user_ap_[req.user].store(result.ap, std::memory_order_relaxed);
    util::MutexLock social(social_.mu);
    social_.scores.invalidate_user(req.user);
  }
  active_.fetch_add(1, std::memory_order_relaxed);
  placements_.fetch_add(1, std::memory_order_relaxed);
  if (result.fallback) {
    fallback_placements_.fetch_add(1, std::memory_order_relaxed);
  }
  if (result.overloaded) {
    forced_overloads_.fetch_add(1, std::memory_order_relaxed);
  }
  util::metrics()
      .histogram("serve.place_ns")
      ->record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
  return result;
}

bool ServePipeline::depart(std::uint64_t id, util::SimTime when) {
  const std::optional<LiveSession> s = registry_.take(id);
  if (!s.has_value()) {
    // Unknown id, or a placement still in flight on another thread
    // (the placeholder). Either way nothing was committed yet.
    unknown_departures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  Domain& d = *domains_[s->domain];
  {
    util::MutexLock hold(d.mu);
    d.tracker->disconnect(s->session_index, s->ap);
    d.selector->on_disconnect(s->session_index, s->user, s->ap, when);
  }

  // Mirrors core::OnlineSocialModel::on_disconnect: the presence table
  // reports who was met, and the detected events go to the shared
  // store here, outside both the domain and the presence lock.
  const PresenceTable::DepartureEvents events =
      presence_[s->domain]->depart(s->ap, s->session_index, when);
  for (const UserId peer : events.encountered) {
    shared_.record_encounter(events.user, peer);
  }
  for (const UserId peer : events.co_left) {
    shared_.record_co_leave(events.user, peer);
  }

  if (s->user < user_ap_.size()) {
    user_ap_[s->user].store(kInvalidAp, std::memory_order_relaxed);
    util::MutexLock social(social_.mu);
    social_.scores.invalidate_user(s->user);
  }
  active_.fetch_sub(1, std::memory_order_relaxed);
  departures_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

SocialSnapshot ServePipeline::social_snapshot() {
  util::MutexLock hold(social_.mu);
  const bool incremental = social_.view.sync(shared_);
  const social::CliqueCoverResult& cover = social_.view.cover();
  social_.scores.bind(cover, social_.view.cover_version());

  SocialSnapshot out;
  out.users = shared_.num_users();
  out.exact = cover.exact;
  out.incremental = incremental;
  out.cover_version = social_.view.cover_version();
  for (std::size_t i = 0; i < cover.cliques.size(); ++i) {
    const std::vector<std::size_t>& members = cover.cliques[i];
    out.largest = std::max(out.largest, members.size());
    if (members.size() < 2) {
      ++out.singletons;
      continue;
    }
    ++out.cliques;
    // ΣC(AP) over this clique: θ mass of member pairs currently placed
    // on the same AP. Cached per clique; placements invalidate O(1).
    out.cohesion += social_.scores.score(i, [&](std::size_t) {
      double sum = 0.0;
      for (std::size_t a = 0; a < members.size(); ++a) {
        const UserId ua = static_cast<UserId>(members[a]);
        const ApId ap_a = user_ap_[ua].load(std::memory_order_relaxed);
        if (ap_a == kInvalidAp) continue;
        for (std::size_t b = a + 1; b < members.size(); ++b) {
          const UserId ub = static_cast<UserId>(members[b]);
          if (user_ap_[ub].load(std::memory_order_relaxed) != ap_a) continue;
          sum += social_.view.edge_weight(ua, ub);
        }
      }
      return sum;
    });
  }
  const social::CliqueMaintainerStats& ms = social_.view.stats();
  out.deltas_applied = ms.deltas_applied;
  out.components_solved = ms.components_solved;
  out.components_reused = ms.components_reused;
  out.reseeds = ms.reseeds;
  out.scores_recomputed = social_.scores.recomputed();
  out.scores_reused = social_.scores.reused();
  return out;
}

ServeStats ServePipeline::stats() const noexcept {
  ServeStats out;
  out.placements = placements_.load(std::memory_order_relaxed);
  out.departures = departures_.load(std::memory_order_relaxed);
  out.fallback_placements =
      fallback_placements_.load(std::memory_order_relaxed);
  out.forced_overloads = forced_overloads_.load(std::memory_order_relaxed);
  out.rejected_no_candidate =
      rejected_no_candidate_.load(std::memory_order_relaxed);
  out.rejected_unknown_user =
      rejected_unknown_user_.load(std::memory_order_relaxed);
  out.rejected_duplicate_id =
      rejected_duplicate_id_.load(std::memory_order_relaxed);
  out.unknown_departures =
      unknown_departures_.load(std::memory_order_relaxed);
  return out;
}

fault::HealthState ServePipeline::domain_health(ControllerId domain) const {
  S3_REQUIRE(domain < domains_.size(), "serve: domain out of range");
  // Reads the published snapshot — monitoring never touches the
  // domain placement lock.
  return health_->state(domain);
}

}  // namespace s3::serve
