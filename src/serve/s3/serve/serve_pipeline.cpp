#include "s3/serve/serve_pipeline.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "s3/util/error.h"
#include "s3/util/metrics.h"

namespace s3::serve {

ServePipeline::ServePipeline(const wlan::Network* net,
                             const social::SocialIndexModel* base,
                             ServeConfig config)
    : net_(net),
      config_(std::move(config)),
      shared_(base, config_.expected_live_pairs),
      shards_(std::make_unique<Shard[]>(kShards)) {
  S3_REQUIRE(net_ != nullptr, "ServePipeline: null network");
  core::SelectorSpec spec;
  spec.llf_metric = config_.llf_metric;
  spec.random_seed = config_.random_seed;
  spec.net = net_;
  spec.model = &shared_;
  spec.base_model = base;
  spec.s3 = config_.s3;
  spec.online.s3 = config_.s3;
  spec.online.co_leave_window = config_.co_leave_window;
  spec.online.min_encounter_overlap = config_.min_encounter_overlap;
  const auto factory = core::make_selector_factory(config_.policy, spec);
  domains_.reserve(net_->num_controllers());
  for (ControllerId c = 0; c < net_->num_controllers(); ++c) {
    auto d = std::make_unique<Domain>();
    d->selector = factory->create(c);
    d->tracker = std::make_unique<sim::ApLoadTracker>(*net_);
    domains_.push_back(std::move(d));
  }
}

ServePipeline::~ServePipeline() = default;

PlaceResult ServePipeline::place(const PlaceRequest& req) {
  S3_REQUIRE(req.building < net_->num_buildings(),
             "serve: building id out of range");
  S3_REQUIRE(req.user != kInvalidUser, "serve: invalid user id");
  const auto t0 = std::chrono::steady_clock::now();
  const ControllerId domain_id = net_->controller_of_building(req.building);

  // Reserve the session id first so a concurrent duplicate place() is
  // rejected instead of double-associated. The placeholder (ap ==
  // kInvalidAp) also makes a racing depart() for this id a no-op.
  Shard& shard = shard_of(req.id);
  {
    util::MutexLock hold(shard.mu);
    const auto [it, inserted] = shard.sessions.try_emplace(req.id);
    if (!inserted) {
      rejected_duplicate_id_.fetch_add(1, std::memory_order_relaxed);
      return {};
    }
    it->second.user = req.user;
  }

  sim::Arrival arrival;
  arrival.session_index = next_session_.fetch_add(1, std::memory_order_relaxed);
  arrival.user = req.user;
  arrival.controller = domain_id;
  arrival.connect = req.when;
  arrival.demand_mbps = req.demand_mbps;
  arrival.candidates =
      wlan::candidate_aps(*net_, config_.radio, req.building, req.pos);
  // Domain invariant: every AP this pipeline touches for the session
  // belongs to `domain_id` (presence maps and trackers are per-domain).
  // Dead APs are pruned exactly like ControllerEngine::flush does.
  std::erase_if(arrival.candidates, [&](ApId ap) {
    if (net_->controller_of_ap(ap) != domain_id) return true;
    return config_.injector != nullptr &&
           config_.injector->ap_down(ap, req.when);
  });
  if (arrival.candidates.empty()) {
    rejected_no_candidate_.fetch_add(1, std::memory_order_relaxed);
    util::MutexLock hold(shard.mu);
    shard.sessions.erase(req.id);
    return {};
  }

  PlaceResult result;
  Domain& d = *domains_[domain_id];
  {
    util::MutexLock hold(d.mu);
    if (d.selector->uses_social_model() &&
        req.user >= shared_.num_users()) {
      rejected_unknown_user_.fetch_add(1, std::memory_order_relaxed);
      util::MutexLock shard_hold(shard.mu);
      shard.sessions.erase(req.id);
      return {};
    }
    sim::BatchRequest request;
    request.arrivals = {&arrival, 1};
    if (config_.injector != nullptr) {
      const bool model_out = !config_.injector->model_available(req.when);
      request.faults.model_available = !model_out;
      request.faults.clique_node_budget =
          config_.injector->clique_budget(req.when);
      request.faults.force_fallback = d.degradation.on_batch_start(
          model_out && d.selector->uses_social_model());
    }
    sim::BatchResult dispatched =
        d.selector->place_batch(request, *d.tracker);
    S3_ASSERT(dispatched.placements.size() == 1,
              "serve: policy returned wrong batch arity");
    if (config_.injector != nullptr && !request.faults.force_fallback) {
      d.degradation.on_batch_end(dispatched.full_fidelity);
    }
    const ApId ap = dispatched.placements[0];
    S3_ASSERT(std::find(arrival.candidates.begin(), arrival.candidates.end(),
                        ap) != arrival.candidates.end(),
              "serve: policy picked an AP outside the candidate set");
    result.placed = true;
    result.ap = ap;
    result.fallback = request.faults.force_fallback || !dispatched.full_fidelity;
    result.overloaded = d.tracker->headroom_mbps(ap) < req.demand_mbps;
    d.tracker->associate(arrival.session_index, ap, req.user,
                         req.demand_mbps);
    d.selector->on_associate(arrival, ap);
    d.present[ap].push_back({arrival.session_index, req.user, req.when});
  }

  {
    util::MutexLock hold(shard.mu);
    Session& s = shard.sessions[req.id];
    s.session_index = arrival.session_index;
    s.user = req.user;
    s.ap = result.ap;
    s.domain = domain_id;
    s.demand_mbps = req.demand_mbps;
    s.since = req.when;
  }
  active_.fetch_add(1, std::memory_order_relaxed);
  placements_.fetch_add(1, std::memory_order_relaxed);
  if (result.fallback) {
    fallback_placements_.fetch_add(1, std::memory_order_relaxed);
  }
  if (result.overloaded) {
    forced_overloads_.fetch_add(1, std::memory_order_relaxed);
  }
  util::metrics()
      .histogram("serve.place_ns")
      ->record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
  return result;
}

bool ServePipeline::depart(std::uint64_t id, util::SimTime when) {
  Session s;
  Shard& shard = shard_of(id);
  {
    util::MutexLock hold(shard.mu);
    auto& sessions = shard.sessions;
    const auto it = sessions.find(id);
    if (it == sessions.end() || it->second.ap == kInvalidAp) {
      // Unknown id, or a placement still in flight on another thread
      // (the placeholder). Either way nothing was committed yet.
      unknown_departures_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    s = it->second;
    sessions.erase(it);
  }

  Domain& d = *domains_[s.domain];
  {
    util::MutexLock hold(d.mu);
    d.tracker->disconnect(s.session_index, s.ap);
    d.selector->on_disconnect(s.session_index, s.user, s.ap, when);
    detect_events(d, s.session_index, s.ap, when);
  }
  active_.fetch_sub(1, std::memory_order_relaxed);
  departures_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ServePipeline::detect_events(Domain& d, std::size_t session_index,
                                  ApId ap, util::SimTime when) {
  // Mirrors core::OnlineSocialModel::on_disconnect step for step, with
  // the counter writes going to the process-wide shared store instead
  // of a per-domain private one.
  auto& present = d.present[ap];
  const auto self = std::find_if(
      present.begin(), present.end(),
      [&](const Presence& p) { return p.session_index == session_index; });
  if (self == present.end()) return;  // session predates tracking
  const Presence leaving = *self;
  present.erase(self);

  auto& recent = d.recent[ap];
  recent.erase(
      std::remove_if(recent.begin(), recent.end(),
                     [&](const DepartureRec& r) {
                       return when - r.when > config_.co_leave_window;
                     }),
      recent.end());

  // Encounters only against the still-present side (the symmetric half
  // is counted when the other user leaves) — see OnlineSocialModel.
  for (const Presence& other : present) {
    if (other.user == leaving.user) continue;
    const util::SimTime overlap = when - std::max(other.since, leaving.since);
    if (overlap >= config_.min_encounter_overlap) {
      shared_.record_encounter(leaving.user, other.user);
    }
  }
  for (const DepartureRec& r : recent) {
    if (r.user == leaving.user) continue;
    const util::SimTime overlap = r.when - std::max(r.since, leaving.since);
    if (overlap >= config_.min_encounter_overlap) {
      shared_.record_co_leave(leaving.user, r.user);
    }
  }
  recent.push_back({leaving.user, leaving.since, when});
}

ServeStats ServePipeline::stats() const noexcept {
  ServeStats out;
  out.placements = placements_.load(std::memory_order_relaxed);
  out.departures = departures_.load(std::memory_order_relaxed);
  out.fallback_placements =
      fallback_placements_.load(std::memory_order_relaxed);
  out.forced_overloads = forced_overloads_.load(std::memory_order_relaxed);
  out.rejected_no_candidate =
      rejected_no_candidate_.load(std::memory_order_relaxed);
  out.rejected_unknown_user =
      rejected_unknown_user_.load(std::memory_order_relaxed);
  out.rejected_duplicate_id =
      rejected_duplicate_id_.load(std::memory_order_relaxed);
  out.unknown_departures =
      unknown_departures_.load(std::memory_order_relaxed);
  return out;
}

fault::HealthState ServePipeline::domain_health(ControllerId domain) const {
  S3_REQUIRE(domain < domains_.size(), "serve: domain out of range");
  Domain& d = *domains_[domain];
  util::MutexLock hold(d.mu);
  return d.degradation.state();
}

}  // namespace s3::serve
