#include "s3/serve/line_protocol.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

namespace s3::serve {

namespace {

/// Why an arrival bounced, recovered from the stats delta — place()
/// reports rejection only as placed=false, but the protocol wants the
/// reason on the wire.
const char* rejection_reason(const ServeStats& before,
                             const ServeStats& after) {
  if (after.rejected_duplicate_id > before.rejected_duplicate_id) {
    return "duplicate-id";
  }
  if (after.rejected_unknown_user > before.rejected_unknown_user) {
    return "unknown-user";
  }
  return "no-candidate";
}

}  // namespace

void SyncWriter::write_line(std::string_view line) {
  util::MutexLock lock(mu_);
  *out_ << line << '\n';
}

bool run_line_protocol(ServePipeline& pipeline, std::istream& in,
                       std::ostream& out) {
  SyncWriter writer(out);
  bool clean = true;
  std::string line;
  std::ostringstream response;
  const auto respond = [&] {
    writer.write_line(response.str());
    response.str({});
  };
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string verb;
    fields >> verb;
    if (verb == "arrive") {
      PlaceRequest req;
      std::int64_t t = 0;
      fields >> req.id >> req.user >> req.building >> req.pos.x >>
          req.pos.y >> t >> req.demand_mbps;
      if (fields.fail()) {
        response << "error malformed arrive: " << line;
        respond();
        clean = false;
        continue;
      }
      req.when = util::SimTime::from_seconds(t);
      const ServeStats before = pipeline.stats();
      const PlaceResult r = pipeline.place(req);
      if (r.placed) {
        response << "place " << req.id << ' ' << r.ap;
      } else {
        response << "place " << req.id << " reject "
                 << rejection_reason(before, pipeline.stats());
      }
      respond();
    } else if (verb == "depart") {
      std::uint64_t id = 0;
      std::int64_t t = 0;
      fields >> id >> t;
      if (fields.fail()) {
        response << "error malformed depart: " << line;
        respond();
        clean = false;
        continue;
      }
      if (pipeline.depart(id, util::SimTime::from_seconds(t))) {
        response << "gone " << id;
      } else {
        response << "gone " << id << " unknown";
      }
      respond();
    } else if (verb == "stats") {
      const ServeStats s = pipeline.stats();
      response << "stats placements=" << s.placements
               << " departures=" << s.departures
               << " active=" << pipeline.active_sessions()
               << " fallback=" << s.fallback_placements
               << " overloads=" << s.forced_overloads << " rejected="
               << (s.rejected_no_candidate + s.rejected_unknown_user +
                   s.rejected_duplicate_id)
               << " updated_pairs=" << pipeline.model().updated_pairs();
      respond();
    } else {
      response << "error unknown verb: " << verb;
      respond();
      clean = false;
    }
  }
  return clean;
}

}  // namespace s3::serve
