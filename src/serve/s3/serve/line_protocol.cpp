#include "s3/serve/line_protocol.h"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "s3/util/metrics.h"

namespace s3::serve {

namespace {

/// Why an arrival bounced, recovered from the stats delta — place()
/// reports rejection only as placed=false, but the protocol wants the
/// reason on the wire.
const char* rejection_reason(const ServeStats& before,
                             const ServeStats& after) {
  if (after.rejected_duplicate_id > before.rejected_duplicate_id) {
    return "duplicate-id";
  }
  if (after.rejected_unknown_user > before.rejected_unknown_user) {
    return "unknown-user";
  }
  return "no-candidate";
}

util::Counter* malformed_lines_counter() {
  static util::Counter* const counter =
      util::metrics().counter("serve.malformed_lines");
  return counter;
}

/// True iff anything beyond whitespace is left on the line — a valid
/// request followed by stray tokens is rejected rather than silently
/// truncated (a shifted field list usually means a client bug).
bool has_trailing_garbage(std::istringstream& fields) {
  std::string extra;
  return static_cast<bool>(fields >> extra);
}

}  // namespace

void SyncWriter::write_line(std::string_view line) {
  util::MutexLock lock(mu_);
  *out_ << line << '\n';
}

bool run_line_protocol(ServePipeline& pipeline, std::istream& in,
                       std::ostream& out) {
  SyncWriter writer(out);
  bool clean = true;
  std::string line;
  std::ostringstream response;
  const auto respond = [&] {
    writer.write_line(response.str());
    response.str({});
  };
  const auto reject = [&](std::string_view err_class,
                          std::string_view detail) {
    response << "err " << err_class << ' ' << detail;
    respond();
    malformed_lines_counter()->add(1);
    clean = false;
  };
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string verb;
    fields >> verb;
    if (verb == "arrive") {
      PlaceRequest req;
      std::int64_t t = 0;
      fields >> req.id >> req.user >> req.building >> req.pos.x >>
          req.pos.y >> t >> req.demand_mbps;
      if (fields.fail()) {
        reject("malformed-arrive", line);
        continue;
      }
      if (has_trailing_garbage(fields)) {
        reject("trailing-garbage", line);
        continue;
      }
      req.when = util::SimTime::from_seconds(t);
      const ServeStats before = pipeline.stats();
      const PlaceResult r = pipeline.place(req);
      if (r.placed) {
        response << "place " << req.id << ' ' << r.ap;
      } else {
        response << "place " << req.id << " reject "
                 << rejection_reason(before, pipeline.stats());
      }
      respond();
    } else if (verb == "depart") {
      std::uint64_t id = 0;
      std::int64_t t = 0;
      fields >> id >> t;
      if (fields.fail()) {
        reject("malformed-depart", line);
        continue;
      }
      if (has_trailing_garbage(fields)) {
        reject("trailing-garbage", line);
        continue;
      }
      if (pipeline.depart(id, util::SimTime::from_seconds(t))) {
        response << "gone " << id;
      } else {
        response << "gone " << id << " unknown";
      }
      respond();
    } else if (verb == "stats") {
      if (has_trailing_garbage(fields)) {
        reject("trailing-garbage", line);
        continue;
      }
      const ServeStats s = pipeline.stats();
      response << "stats placements=" << s.placements
               << " departures=" << s.departures
               << " active=" << pipeline.active_sessions()
               << " fallback=" << s.fallback_placements
               << " overloads=" << s.forced_overloads << " rejected="
               << (s.rejected_no_candidate + s.rejected_unknown_user +
                   s.rejected_duplicate_id)
               << " updated_pairs=" << pipeline.model().updated_pairs();
      respond();
    } else if (verb == "social") {
      if (has_trailing_garbage(fields)) {
        reject("trailing-garbage", line);
        continue;
      }
      const SocialSnapshot s = pipeline.social_snapshot();
      char cohesion[32];
      std::snprintf(cohesion, sizeof(cohesion), "%.6f", s.cohesion);
      response << "social users=" << s.users << " cliques=" << s.cliques
               << " singletons=" << s.singletons << " largest=" << s.largest
               << " cohesion=" << cohesion << " exact=" << (s.exact ? 1 : 0)
               << " incremental=" << (s.incremental ? 1 : 0)
               << " cover_version=" << s.cover_version
               << " deltas=" << s.deltas_applied
               << " solved=" << s.components_solved
               << " reused=" << s.components_reused
               << " reseeds=" << s.reseeds;
      respond();
    } else {
      reject("unknown-verb", verb);
    }
  }
  return clean;
}

}  // namespace s3::serve
