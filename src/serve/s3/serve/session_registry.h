// Sharded id -> live-session table for the serve pipeline.
//
// Every place()/depart() resolves a caller-chosen session id here, so
// the table is split over 64 mutex-guarded shards (id hashed with the
// splitmix64 finalizer) to keep unrelated sessions off each other's
// locks. The two-phase insert protocol is what makes concurrent
// duplicate place() calls and place/depart races safe:
//
//   reserve(id)  claims the id with an in-flight placeholder (ap ==
//                kInvalidAp); a second reserve of the same id fails,
//                and a racing depart treats the placeholder as
//                unknown because nothing was committed yet;
//   commit(id)   publishes the placed session under the reserved id;
//   cancel(id)   drops a reservation whose placement was rejected;
//   take(id)     removes and returns a committed session for depart.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "s3/util/ids.h"
#include "s3/util/sim_time.h"
#include "s3/util/thread_annotations.h"

namespace s3::serve {

/// One committed live session (internal to the pipeline).
struct LiveSession {
  std::size_t session_index = 0;
  UserId user = kInvalidUser;
  ApId ap = kInvalidAp;  ///< kInvalidAp while the placement is in flight
  ControllerId domain = kInvalidController;
  double demand_mbps = 0.0;
  util::SimTime since{};
};

class SessionRegistry {
 public:
  SessionRegistry() : shards_(std::make_unique<Shard[]>(kShards)) {}

  /// Claims `id` with an in-flight placeholder. False if the id is
  /// already reserved or committed (duplicate).
  bool reserve(std::uint64_t id, UserId user) {
    Shard& shard = shard_of(id);
    util::MutexLock lock(shard.mu);
    const auto [it, inserted] = shard.sessions.try_emplace(id);
    if (inserted) it->second.user = user;
    return inserted;
  }

  /// Drops a reservation whose placement was rejected.
  void cancel(std::uint64_t id) {
    Shard& shard = shard_of(id);
    util::MutexLock lock(shard.mu);
    shard.sessions.erase(id);
  }

  /// Publishes the placed session under a previously reserved id.
  void commit(std::uint64_t id, const LiveSession& session) {
    Shard& shard = shard_of(id);
    util::MutexLock lock(shard.mu);
    shard.sessions[id] = session;
  }

  /// Removes and returns the committed session under `id`; nullopt for
  /// unknown ids and for placements still in flight on another thread.
  std::optional<LiveSession> take(std::uint64_t id) {
    Shard& shard = shard_of(id);
    util::MutexLock lock(shard.mu);
    const auto it = shard.sessions.find(id);
    if (it == shard.sessions.end() || it->second.ap == kInvalidAp) {
      return std::nullopt;
    }
    LiveSession out = it->second;
    shard.sessions.erase(it);
    return out;
  }

 private:
  struct Shard {
    mutable util::Mutex mu;
    std::unordered_map<std::uint64_t, LiveSession> sessions
        S3_GUARDED_BY(mu);
  };
  static constexpr std::size_t kShards = 64;  // power of two

  Shard& shard_of(std::uint64_t id) const noexcept {
    // splitmix64 finalizer, same mix as the pair stores.
    std::uint64_t z = id;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return shards_[(z ^ (z >> 31)) & (kShards - 1)];
  }

  std::unique_ptr<Shard[]> shards_;
};

}  // namespace s3::serve
