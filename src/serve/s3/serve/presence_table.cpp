#include "s3/serve/presence_table.h"

#include <algorithm>

namespace s3::serve {

void PresenceTable::arrive(ApId ap, std::size_t session_index, UserId user,
                           util::SimTime when) {
  util::MutexLock lock(mu_);
  present_[ap].push_back({session_index, user, when});
}

PresenceTable::DepartureEvents PresenceTable::depart(ApId ap,
                                                     std::size_t session_index,
                                                     util::SimTime when) {
  DepartureEvents out;
  util::MutexLock lock(mu_);

  auto& here = present_[ap];
  const auto self = std::find_if(
      here.begin(), here.end(),
      [&](const Presence& p) { return p.session_index == session_index; });
  if (self == here.end()) return out;  // session predates tracking
  const Presence leaving = *self;
  here.erase(self);
  out.tracked = true;
  out.user = leaving.user;

  auto& departures = recent_[ap];
  departures.erase(
      std::remove_if(departures.begin(), departures.end(),
                     [&](const DepartureRec& r) {
                       return when - r.when > co_leave_window_;
                     }),
      departures.end());

  // Encounters only against the still-present side (the symmetric half
  // is counted when the other user leaves) — see OnlineSocialModel.
  for (const Presence& other : here) {
    if (other.user == leaving.user) continue;
    const util::SimTime overlap = when - std::max(other.since, leaving.since);
    if (overlap >= min_encounter_overlap_) {
      out.encountered.push_back(other.user);
    }
  }
  for (const DepartureRec& r : departures) {
    if (r.user == leaving.user) continue;
    const util::SimTime overlap = r.when - std::max(r.since, leaving.since);
    if (overlap >= min_encounter_overlap_) {
      out.co_left.push_back(r.user);
    }
  }
  departures.push_back({leaving.user, leaving.since, when});
  return out;
}

}  // namespace s3::serve
