// Per-domain presence state for online social-event detection.
//
// Mirrors core::OnlineSocialModel's bookkeeping: who is on each AP
// right now, and who left recently enough to still count for
// co-leaving. ServePipeline keeps one table per domain (an AP belongs
// to exactly one domain, so presence never crosses tables) and each
// table carries its own mutex — event detection serializes only with
// arrivals/departures of the *same* domain, and no longer extends the
// domain placement lock's critical section.
//
// depart() only reports which peers were met; the caller writes the
// encounter/co-leave counters into its shared store outside this
// table's lock, so the lock order is always domain placement lock ->
// presence lock -> (lock-free) store, never anything cyclic.
#pragma once

#include <unordered_map>
#include <vector>

#include "s3/util/ids.h"
#include "s3/util/sim_time.h"
#include "s3/util/thread_annotations.h"

namespace s3::serve {

class PresenceTable {
 public:
  /// The social events one departure implies, against the departing
  /// session's stay on its AP.
  struct DepartureEvents {
    bool tracked = false;  ///< false if the session was never recorded
    UserId user = kInvalidUser;
    std::vector<UserId> encountered;  ///< peers still present long enough
    std::vector<UserId> co_left;      ///< peers that left shortly before
  };

  PresenceTable(util::SimTime co_leave_window,
                util::SimTime min_encounter_overlap)
      : co_leave_window_(co_leave_window),
        min_encounter_overlap_(min_encounter_overlap) {}

  /// Records that `user`'s session is now present on `ap`.
  void arrive(ApId ap, std::size_t session_index, UserId user,
              util::SimTime when) S3_EXCLUDES(mu_);

  /// Removes the session from `ap`'s presence list and returns the
  /// encounter/co-leave peers its departure implies. The departing
  /// session itself joins the recent-departure ring for later
  /// co-leave matches.
  DepartureEvents depart(ApId ap, std::size_t session_index,
                         util::SimTime when) S3_EXCLUDES(mu_);

 private:
  struct Presence {
    std::size_t session_index;
    UserId user;
    util::SimTime since;
  };
  struct DepartureRec {
    UserId user;
    util::SimTime since;
    util::SimTime when;
  };

  const util::SimTime co_leave_window_;
  const util::SimTime min_encounter_overlap_;

  mutable util::Mutex mu_;
  std::unordered_map<ApId, std::vector<Presence>> present_
      S3_GUARDED_BY(mu_);
  std::unordered_map<ApId, std::vector<DepartureRec>> recent_
      S3_GUARDED_BY(mu_);
};

}  // namespace s3::serve
