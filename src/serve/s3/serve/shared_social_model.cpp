#include "s3/serve/shared_social_model.h"

#include "s3/util/error.h"

namespace s3::serve {

SharedSocialModel::SharedSocialModel(const social::SocialIndexModel* base,
                                     std::size_t expected_live_pairs)
    : base_(base), store_(expected_live_pairs) {
  S3_REQUIRE(base_ != nullptr, "SharedSocialModel: null base model");
}

double SharedSocialModel::theta(UserId u, UserId v) const {
  if (u == v) return 0.0;
  // Expression shapes mirror core::OnlineSocialModel::theta exactly so
  // the two providers agree bit for bit on identical event histories.
  const auto live = store_.find(UserPair(u, v));
  if (!live.has_value()) return base_->theta(u, v);
  const double type_term =
      base_->type_matrix().num_types() > 0
          ? base_->type_matrix().at(base_->typing().type(u),
                                    base_->typing().type(v))
          : 0.0;
  return live->co_leave_probability() + base_->alpha() * type_term;
}

void SharedSocialModel::theta_row(UserId u, std::span<const UserId> vs,
                                  std::span<double> out) const {
  // One flat pass over the frozen model's row, then overwrite the few
  // entries whose pair has live history — same shape as the online
  // model's row kernel.
  base_->theta_row(u, vs, out);
  if (store_.empty()) return;
  const bool typed = base_->type_matrix().num_types() > 0;
  const std::size_t type_u = typed ? base_->typing().type(u) : 0;
  for (std::size_t i = 0; i < vs.size(); ++i) {
    const UserId v = vs[i];
    if (v == u) continue;
    const auto live = store_.find(UserPair(u, v));
    if (live.has_value()) {
      const double type_term =
          typed ? base_->type_matrix().at(type_u, base_->typing().type(v))
                : 0.0;
      out[i] = live->co_leave_probability() + base_->alpha() * type_term;
    }
  }
}

namespace {
/// Feed retention, matching core::OnlineSocialModel's: overflow drops
/// the older half, and a consumer that skipped past the retained
/// window gets an incomplete poll and reseeds.
constexpr std::size_t kFeedCapacity = 1 << 16;
}  // namespace

void SharedSocialModel::push_delta(UserId u, UserId v) {
  util::MutexLock hold(feed_.mu);
  // θ is computed here, after this writer's store update and inside
  // the feed lock: every record appended before this one came from a
  // writer whose store update happens-before ours was read (its
  // unlock ordered before our lock), so the *last* record for any
  // pair carries a θ that already folds in every earlier-appended
  // update. Applying a drained suffix in order therefore converges on
  // the store's current θ for every touched pair.
  if (feed_.records.size() >= kFeedCapacity) {
    const std::size_t drop = feed_.records.size() / 2;
    feed_.records.erase(
        feed_.records.begin(),
        feed_.records.begin() + static_cast<std::ptrdiff_t>(drop));
    feed_.base += drop;
  }
  feed_.records.push_back(
      social::ThetaDelta{UserPair(u, v), theta(u, v), store_.epoch()});
}

social::ThetaDeltaPoll SharedSocialModel::poll_theta_deltas(
    std::uint64_t cursor, std::vector<social::ThetaDelta>& out) const {
  util::MutexLock hold(feed_.mu);
  const std::uint64_t end = feed_.base + feed_.records.size();
  if (cursor < feed_.base || cursor > end) {
    return social::ThetaDeltaPoll{end, false};
  }
  out.insert(
      out.end(),
      feed_.records.begin() + static_cast<std::ptrdiff_t>(cursor - feed_.base),
      feed_.records.end());
  return social::ThetaDeltaPoll{end, true};
}

void SharedSocialModel::record_encounter(UserId u, UserId v) {
  bump(u, v,
       [](social::ConcurrentPairStore::Stats& s) { ++s.encounters; });
}

void SharedSocialModel::record_co_leave(UserId u, UserId v) {
  bump(u, v, [](social::ConcurrentPairStore::Stats& s) { ++s.co_leaves; });
}

void SharedSocialModel::record_co_coming(UserId u, UserId v) {
  bump(u, v, [](social::ConcurrentPairStore::Stats& s) { ++s.co_comings; });
}

}  // namespace s3::serve
