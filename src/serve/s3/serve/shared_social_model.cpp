#include "s3/serve/shared_social_model.h"

#include "s3/util/error.h"

namespace s3::serve {

SharedSocialModel::SharedSocialModel(const social::SocialIndexModel* base,
                                     std::size_t expected_live_pairs)
    : base_(base), store_(expected_live_pairs) {
  S3_REQUIRE(base_ != nullptr, "SharedSocialModel: null base model");
}

double SharedSocialModel::theta(UserId u, UserId v) const {
  if (u == v) return 0.0;
  // Expression shapes mirror core::OnlineSocialModel::theta exactly so
  // the two providers agree bit for bit on identical event histories.
  const auto live = store_.find(UserPair(u, v));
  if (!live.has_value()) return base_->theta(u, v);
  const double type_term =
      base_->type_matrix().num_types() > 0
          ? base_->type_matrix().at(base_->typing().type(u),
                                    base_->typing().type(v))
          : 0.0;
  return live->co_leave_probability() + base_->alpha() * type_term;
}

void SharedSocialModel::theta_row(UserId u, std::span<const UserId> vs,
                                  std::span<double> out) const {
  // One flat pass over the frozen model's row, then overwrite the few
  // entries whose pair has live history — same shape as the online
  // model's row kernel.
  base_->theta_row(u, vs, out);
  if (store_.empty()) return;
  const bool typed = base_->type_matrix().num_types() > 0;
  const std::size_t type_u = typed ? base_->typing().type(u) : 0;
  for (std::size_t i = 0; i < vs.size(); ++i) {
    const UserId v = vs[i];
    if (v == u) continue;
    const auto live = store_.find(UserPair(u, v));
    if (live.has_value()) {
      const double type_term =
          typed ? base_->type_matrix().at(type_u, base_->typing().type(v))
                : 0.0;
      out[i] = live->co_leave_probability() + base_->alpha() * type_term;
    }
  }
}

void SharedSocialModel::record_encounter(UserId u, UserId v) {
  bump(u, v,
       [](social::ConcurrentPairStore::Stats& s) { ++s.encounters; });
}

void SharedSocialModel::record_co_leave(UserId u, UserId v) {
  bump(u, v, [](social::ConcurrentPairStore::Stats& s) { ++s.co_leaves; });
}

void SharedSocialModel::record_co_coming(UserId u, UserId v) {
  bump(u, v, [](social::ConcurrentPairStore::Stats& s) { ++s.co_comings; });
}

}  // namespace s3::serve
