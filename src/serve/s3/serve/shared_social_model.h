// A ThetaProvider that many controller threads can read lock-free
// while live counter updates stream in.
//
// core::OnlineSocialModel assumes a single owning thread: its live
// counters sit in a sequential PairStore whose erase/rehash moves
// other entries. SharedSocialModel keeps the exact same θ semantics —
// frozen base model plus copy-on-first-touch live pair counters — but
// stores the live overlay in a ConcurrentPairStore, so:
//
//   * theta()/theta_row() never take a lock (per-bucket seqlock
//     snapshot reads);
//   * record_encounter()/record_co_leave() serialize only on the
//     touched pair's hash bucket, so per-domain serve controllers
//     update disjoint social neighborhoods in parallel;
//   * read_epoch() exposes the store's mutation stamp, implementing
//     the ThetaProvider read-snapshot contract for the live regime.
//
// Single-threaded, SharedSocialModel and OnlineSocialModel driven by
// the same event stream produce bit-identical θ values (asserted in
// tests/serve/serve_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "s3/social/concurrent_pair_store.h"
#include "s3/social/social_index.h"
#include "s3/util/thread_annotations.h"

namespace s3::serve {

class SharedSocialModel : public social::ThetaProvider {
 public:
  /// `base` must outlive this object; its pair stats seed the live
  /// counters lazily (copy-on-first-touch, at first write).
  explicit SharedSocialModel(const social::SocialIndexModel* base,
                             std::size_t expected_live_pairs = 0);

  double theta(UserId u, UserId v) const override;
  void theta_row(UserId u, std::span<const UserId> vs,
                 std::span<double> out) const override;
  std::size_t num_users() const override { return base_->num_users(); }
  /// Deprecated direct polling: the raw epoch only says *something*
  /// changed. Consumers tracking derived state should drain
  /// poll_theta_deltas(), which says *which* pairs moved and when a
  /// reseed is unavoidable. (Base-interface calls through
  /// ThetaProvider::read_epoch keep working, undeprecated — the epoch
  /// remains the coarse signal the feed refines.)
  [[deprecated(
      "poll raw epochs via the ThetaProvider interface, or better, drain "
      "poll_theta_deltas()")]]
  std::uint64_t read_epoch() const noexcept override {
    return store_.epoch();
  }

  /// Structured change feed per the ThetaDelta contract (graph.h).
  /// Every record_* call appends one record whose θ is computed after
  /// the store update, inside the feed lock — so the last-appended
  /// record for a pair reflects every earlier-appended writer's
  /// update, and in-order application converges on the store's state.
  bool emits_theta_deltas() const noexcept override { return true; }
  social::ThetaDeltaPoll poll_theta_deltas(
      std::uint64_t cursor,
      std::vector<social::ThetaDelta>& out) const override
      S3_EXCLUDES(feed_.mu);

  /// Live-event writers (any thread). Counters are seeded from the
  /// base model's trained statistics the first time a pair is touched,
  /// so the live ratio continues the history instead of restarting.
  void record_encounter(UserId u, UserId v);
  void record_co_leave(UserId u, UserId v);
  void record_co_coming(UserId u, UserId v);

  /// Pairs whose statistics changed since training.
  std::size_t updated_pairs() const noexcept { return store_.size(); }

  const social::SocialIndexModel& base() const noexcept { return *base_; }
  const social::ConcurrentPairStore& live() const noexcept { return store_; }

 private:
  /// The bounded delta log and its cursor, behind their own lock (the
  /// store itself stays lock-free).
  struct Feed {
    mutable util::Mutex mu;
    std::vector<social::ThetaDelta> records S3_GUARDED_BY(mu);
    /// Cursor of records[0]; earlier entries were truncated away.
    std::uint64_t base S3_GUARDED_BY(mu) = 0;
  };

  template <typename Fn>
  void bump(UserId u, UserId v, Fn&& fn) S3_EXCLUDES(feed_.mu) {
    const UserPair key(u, v);
    social::ConcurrentPairStore::Stats seed{};
    const social::PairStore::Stats* trained = base_->pair_stats().find(key);
    if (trained != nullptr) seed = *trained;
    store_.update(key, std::forward<Fn>(fn), &seed);
    push_delta(u, v);
  }

  /// Appends the pair's post-update θ to the bounded feed. Must run
  /// after the store update; see emits_theta_deltas() for why θ is
  /// read inside the lock.
  void push_delta(UserId u, UserId v) S3_EXCLUDES(feed_.mu);

  const social::SocialIndexModel* base_;
  social::ConcurrentPairStore store_;
  Feed feed_;
};

}  // namespace s3::serve
