// Live association pipeline — the long-running counterpart of the
// trace-driven ReplayDriver.
//
// A ServePipeline answers "which AP?" for a stream of arrivals as they
// happen, instead of replaying a recorded workload. Structure mirrors
// the paper's deployment (§V-A): one controller per building group,
// controllers fully independent. Each domain owns a policy instance, a
// load tracker, and a degradation state machine, guarded by one
// per-domain mutex — so placements in different domains run fully in
// parallel, and every domain's θ lookups go through one shared
// SharedSocialModel whose reads are lock-free. The presence state for
// online encounter/co-leave detection lives in a per-domain
// PresenceTable behind its own lock, so event detection never extends
// the placement lock's critical section.
//
// Threading contract: place() and depart() are safe from any number of
// threads. Callers bring their own concurrency (the stdin driver is
// sequential; bench_serve shards domains across workers). Calls for
// the same domain serialize on the domain mutex; the shared social
// store serializes only per hash bucket.
//
// The fault machinery is reused unchanged from replay: an optional
// FaultInjector prunes dead APs from candidate sets, declares model
// outages that drive each domain's HEALTHY → DEGRADED → RECOVERING
// DegradationTracker, and squeezes the clique budget — exactly the
// directives ControllerEngine::flush applies, minus the trace-driven
// retry queue (a live caller re-asks when it wants to retry).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "s3/core/selector_factory.h"
#include "s3/fault/degradation.h"
#include "s3/fault/fault_injector.h"
#include "s3/fault/health_board.h"
#include "s3/serve/presence_table.h"
#include "s3/serve/session_registry.h"
#include "s3/serve/shared_social_model.h"
#include "s3/social/clique_maintainer.h"
#include "s3/sim/load_state.h"
#include "s3/sim/selector.h"
#include "s3/util/thread_annotations.h"
#include "s3/wlan/network.h"
#include "s3/wlan/radio.h"

namespace s3::serve {

struct ServeConfig {
  /// Any policy registered with core::make_selector_factory. "s3" runs
  /// over the shared live model; baselines ignore it.
  std::string policy = "s3";
  wlan::RadioModel radio{};
  core::S3Config s3{};
  core::LoadMetric llf_metric = core::LoadMetric::kDemand;
  std::uint64_t random_seed = 1;
  /// Online event-detection windows (paper optima, §V-B).
  util::SimTime co_leave_window = util::SimTime::from_minutes(5);
  util::SimTime min_encounter_overlap = util::SimTime::from_minutes(10);
  /// Optional fault schedule; must outlive the pipeline.
  const fault::FaultInjector* injector = nullptr;
  /// Pre-size hint for the live pair store.
  std::size_t expected_live_pairs = 0;
};

/// One association request from the outside world.
struct PlaceRequest {
  std::uint64_t id = 0;  ///< caller-chosen, unique among active sessions
  UserId user = kInvalidUser;
  BuildingId building = 0;
  wlan::Position pos{};
  util::SimTime when{};
  double demand_mbps = 0.0;
};

struct PlaceResult {
  bool placed = false;
  ApId ap = kInvalidAp;
  bool fallback = false;    ///< served by the degradation fallback
  bool overloaded = false;  ///< chosen AP had no bandwidth headroom
};

/// Monitoring view of the live social structure: the maintained clique
/// cover of the θ-graph over the shared model, plus how much of its
/// social mass current placements keep together. Served by
/// ServePipeline::social_snapshot() (the `social` protocol verb)
/// without rebuilding the graph — the pipeline's CliqueMaintainer
/// consumes the shared model's ThetaDelta feed and re-solves only the
/// components live events actually touched.
struct SocialSnapshot {
  std::size_t users = 0;
  std::size_t cliques = 0;     ///< multi-member cliques in the cover
  std::size_t singletons = 0;  ///< size-1 cover entries
  std::size_t largest = 0;
  bool exact = true;  ///< no extraction hit the node budget
  /// False when this query had to reseed from scratch (first call, or
  /// the feed window was outrun).
  bool incremental = false;
  /// Σ over cliques of the cached ΣC(AP) score: the θ mass of member
  /// pairs whose current placements share an AP. Scores are cached per
  /// clique and invalidated by placement changes touching a member.
  double cohesion = 0.0;
  std::uint64_t cover_version = 0;
  // Cumulative maintainer / score-cache telemetry.
  std::uint64_t deltas_applied = 0;
  std::uint64_t components_solved = 0;
  std::uint64_t components_reused = 0;
  std::uint64_t reseeds = 0;
  std::uint64_t scores_recomputed = 0;
  std::uint64_t scores_reused = 0;
};

struct ServeStats {
  std::uint64_t placements = 0;
  std::uint64_t departures = 0;
  std::uint64_t fallback_placements = 0;
  std::uint64_t forced_overloads = 0;
  std::uint64_t rejected_no_candidate = 0;
  std::uint64_t rejected_unknown_user = 0;
  std::uint64_t rejected_duplicate_id = 0;
  std::uint64_t unknown_departures = 0;
};

class ServePipeline {
 public:
  /// `net` and `base` must outlive the pipeline.
  ServePipeline(const wlan::Network* net,
                const social::SocialIndexModel* base,
                ServeConfig config = {});
  ~ServePipeline();

  ServePipeline(const ServePipeline&) = delete;
  ServePipeline& operator=(const ServePipeline&) = delete;

  /// Places one arrival; thread-safe. Rejections (no live candidate
  /// AP, unknown user under a social policy, duplicate id) return
  /// placed = false and are counted in stats().
  PlaceResult place(const PlaceRequest& req);

  /// Ends the session placed under `id`; thread-safe. Returns false
  /// for ids that are not active.
  bool depart(std::uint64_t id, util::SimTime when);

  const SharedSocialModel& model() const noexcept { return shared_; }
  const wlan::Network& network() const noexcept { return *net_; }
  std::size_t num_domains() const noexcept { return domains_.size(); }

  ServeStats stats() const noexcept;
  std::size_t active_sessions() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }

  /// Current social structure (see SocialSnapshot). Thread-safe; the
  /// first call seeds the maintained θ-graph (O(users²) θ probes),
  /// later calls drain the shared model's delta feed and re-solve only
  /// dirty components. Concurrent placements keep streaming — the
  /// snapshot serializes only against other snapshots and the O(1)
  /// per-placement score invalidation.
  SocialSnapshot social_snapshot();

  fault::HealthState domain_health(ControllerId domain) const;

 private:
  struct Domain {
    util::Mutex mu;
    std::unique_ptr<sim::ApSelector> selector S3_GUARDED_BY(mu);
    std::unique_ptr<sim::ApLoadTracker> tracker S3_GUARDED_BY(mu);
    fault::DegradationTracker degradation S3_GUARDED_BY(mu);
  };

  const wlan::Network* net_;
  ServeConfig config_;
  SharedSocialModel shared_;
  std::vector<std::unique_ptr<Domain>> domains_;
  /// id -> live session, sharded (see SessionRegistry's protocol).
  SessionRegistry registry_;
  /// Per-domain online event-detection state (an AP belongs to exactly
  /// one domain, so presence never crosses tables).
  std::vector<std::unique_ptr<PresenceTable>> presence_;
  /// Monitoring-facing health snapshots, published after every
  /// degradation step so domain_health() skips the domain lock.
  std::unique_ptr<fault::HealthBoard> health_;

  std::atomic<std::size_t> next_session_{0};
  std::atomic<std::size_t> active_{0};

  /// Social monitoring state (social_snapshot): the maintained cover
  /// and its per-clique score cache, touched by placements only for
  /// the O(1) invalidation. Same shape as Domain: the struct owns the
  /// lock its fields are tied to.
  struct SocialView {
    util::Mutex mu;
    social::CliqueMaintainer view S3_GUARDED_BY(mu);
    social::CliqueScoreCache scores S3_GUARDED_BY(mu);
  };
  SocialView social_;
  /// Latest AP each user is placed on (kInvalidAp when absent); sized
  /// at construction, so lock-free updates from any thread.
  std::vector<std::atomic<ApId>> user_ap_;

  // Stats (relaxed atomics; exact once quiescent).
  std::atomic<std::uint64_t> placements_{0};
  std::atomic<std::uint64_t> departures_{0};
  std::atomic<std::uint64_t> fallback_placements_{0};
  std::atomic<std::uint64_t> forced_overloads_{0};
  std::atomic<std::uint64_t> rejected_no_candidate_{0};
  std::atomic<std::uint64_t> rejected_unknown_user_{0};
  std::atomic<std::uint64_t> rejected_duplicate_id_{0};
  std::atomic<std::uint64_t> unknown_departures_{0};
};

}  // namespace s3::serve
