// Text line protocol for driving a ServePipeline over a stream —
// what `s3lb serve` speaks on stdin/stdout, and what the end-to-end
// test replays from a file.
//
// Requests, one per line (blank lines and `#` comments ignored):
//
//   arrive <id> <user> <building> <x> <y> <t_seconds> <demand_mbps>
//   depart <id> <t_seconds>
//   stats
//   social
//
// Responses, one line per request, in order:
//
//   place <id> <ap>            arrival placed on <ap>
//   place <id> reject <why>    arrival rejected (no-candidate,
//                              unknown-user, duplicate-id)
//   gone <id>                  departure applied
//   gone <id> unknown          id was not an active session
//   stats placements=<n> departures=<n> active=<n> fallback=<n>
//         overloads=<n> rejected=<n> updated_pairs=<n>   (one line)
//   social users=<n> cliques=<n> singletons=<n> largest=<n>
//          cohesion=<x.xxxxxx> exact=<0|1> incremental=<0|1>
//          cover_version=<n> deltas=<n> solved=<n> reused=<n>
//          reseeds=<n>                                   (one line)
//
// `social` serves ServePipeline::social_snapshot(): the maintained
// clique cover of the live θ-graph plus the cohesion score (θ mass of
// clique pairs currently sharing an AP). The first query seeds the
// maintained graph; later ones drain the model's ThetaDelta feed and
// re-solve only dirty components (incremental=1).
//
// Malformed lines get a structured reply and processing continues:
//
//   err malformed-arrive <line>    arrive with missing/non-numeric fields
//   err malformed-depart <line>    depart with missing/non-numeric fields
//   err trailing-garbage <line>    valid request + extra tokens
//   err unknown-verb <verb>        first token is not a request verb
//
// The machine-readable class is always the second token, so scripted
// clients can branch on it without parsing free text. Every err line
// also bumps the `serve.malformed_lines` counter on the metrics bus
// (`s3lb serve --metrics` dumps it). The driver returns false iff any
// line was malformed, so batch callers can fail loudly while
// interactive callers keep their session.
#pragma once

#include <iosfwd>
#include <string_view>

#include "s3/serve/serve_pipeline.h"
#include "s3/util/thread_annotations.h"

namespace s3::serve {

/// Whole-line serializer for a shared response stream. Concurrent
/// responders (one driver per client of the same pipeline) write
/// through one SyncWriter so lines never interleave mid-line; each
/// write_line is one critical section, newline included.
class SyncWriter {
 public:
  /// `out` must outlive the writer.
  explicit SyncWriter(std::ostream& out) : out_(&out) {}

  /// Writes `line` plus a newline atomically with respect to other
  /// write_line calls.
  void write_line(std::string_view line) S3_EXCLUDES(mu_);

 private:
  util::Mutex mu_;
  std::ostream* out_ S3_PT_GUARDED_BY(mu_);
};

/// Feeds every line of `in` to `pipeline`, writing one response line
/// per request to `out`. Sequential (single caller thread); the
/// pipeline itself may concurrently serve other threads, and the
/// responses go through a SyncWriter so a second driver on the same
/// ostream stays line-atomic.
bool run_line_protocol(ServePipeline& pipeline, std::istream& in,
                       std::ostream& out);

}  // namespace s3::serve
