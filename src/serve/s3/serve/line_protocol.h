// Text line protocol for driving a ServePipeline over a stream —
// what `s3lb serve` speaks on stdin/stdout, and what the end-to-end
// test replays from a file.
//
// Requests, one per line (blank lines and `#` comments ignored):
//
//   arrive <id> <user> <building> <x> <y> <t_seconds> <demand_mbps>
//   depart <id> <t_seconds>
//   stats
//
// Responses, one line per request, in order:
//
//   place <id> <ap>            arrival placed on <ap>
//   place <id> reject <why>    arrival rejected (no-candidate,
//                              unknown-user, duplicate-id)
//   gone <id>                  departure applied
//   gone <id> unknown          id was not an active session
//   stats placements=<n> departures=<n> active=<n> fallback=<n>
//         overloads=<n> rejected=<n> updated_pairs=<n>   (one line)
//
// Malformed lines get `error <message>` and processing continues; the
// driver returns false iff any line was malformed, so batch callers
// can fail loudly while interactive callers keep their session.
#pragma once

#include <iosfwd>

#include "s3/serve/serve_pipeline.h"

namespace s3::serve {

/// Feeds every line of `in` to `pipeline`, writing one response line
/// per request to `out`. Sequential (single caller thread); the
/// pipeline itself may concurrently serve other threads.
bool run_line_protocol(ServePipeline& pipeline, std::istream& in,
                       std::ostream& out);

}  // namespace s3::serve
