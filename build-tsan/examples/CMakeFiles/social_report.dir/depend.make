# Empty dependencies file for social_report.
# This may be replaced when dependencies are built.
