file(REMOVE_RECURSE
  "CMakeFiles/social_report.dir/social_report.cpp.o"
  "CMakeFiles/social_report.dir/social_report.cpp.o.d"
  "social_report"
  "social_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
