file(REMOVE_RECURSE
  "CMakeFiles/campus_day.dir/campus_day.cpp.o"
  "CMakeFiles/campus_day.dir/campus_day.cpp.o.d"
  "campus_day"
  "campus_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
