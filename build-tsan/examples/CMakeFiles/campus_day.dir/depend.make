# Empty dependencies file for campus_day.
# This may be replaced when dependencies are built.
