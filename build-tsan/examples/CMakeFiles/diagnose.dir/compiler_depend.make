# Empty compiler generated dependencies file for diagnose.
# This may be replaced when dependencies are built.
