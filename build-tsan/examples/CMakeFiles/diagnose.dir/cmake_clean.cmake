file(REMOVE_RECURSE
  "CMakeFiles/diagnose.dir/diagnose.cpp.o"
  "CMakeFiles/diagnose.dir/diagnose.cpp.o.d"
  "diagnose"
  "diagnose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
