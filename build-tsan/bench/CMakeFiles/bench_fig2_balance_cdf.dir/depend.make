# Empty dependencies file for bench_fig2_balance_cdf.
# This may be replaced when dependencies are built.
