# Empty dependencies file for bench_table1_type_coleave.
# This may be replaced when dependencies are built.
