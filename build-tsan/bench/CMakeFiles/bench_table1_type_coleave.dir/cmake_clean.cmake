file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_type_coleave.dir/bench_table1_type_coleave.cpp.o"
  "CMakeFiles/bench_table1_type_coleave.dir/bench_table1_type_coleave.cpp.o.d"
  "bench_table1_type_coleave"
  "bench_table1_type_coleave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_type_coleave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
