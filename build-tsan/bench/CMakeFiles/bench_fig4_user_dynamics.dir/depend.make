# Empty dependencies file for bench_fig4_user_dynamics.
# This may be replaced when dependencies are built.
