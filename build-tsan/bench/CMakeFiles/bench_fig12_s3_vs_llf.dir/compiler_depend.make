# Empty compiler generated dependencies file for bench_fig12_s3_vs_llf.
# This may be replaced when dependencies are built.
