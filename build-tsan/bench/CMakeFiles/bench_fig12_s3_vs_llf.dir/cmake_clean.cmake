file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_s3_vs_llf.dir/bench_fig12_s3_vs_llf.cpp.o"
  "CMakeFiles/bench_fig12_s3_vs_llf.dir/bench_fig12_s3_vs_llf.cpp.o.d"
  "bench_fig12_s3_vs_llf"
  "bench_fig12_s3_vs_llf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_s3_vs_llf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
