file(REMOVE_RECURSE
  "CMakeFiles/bench_theta_hotpath.dir/bench_theta_hotpath.cpp.o"
  "CMakeFiles/bench_theta_hotpath.dir/bench_theta_hotpath.cpp.o.d"
  "bench_theta_hotpath"
  "bench_theta_hotpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theta_hotpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
