# Empty compiler generated dependencies file for bench_theta_hotpath.
# This may be replaced when dependencies are built.
