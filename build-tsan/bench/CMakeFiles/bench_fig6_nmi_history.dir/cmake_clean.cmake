file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_nmi_history.dir/bench_fig6_nmi_history.cpp.o"
  "CMakeFiles/bench_fig6_nmi_history.dir/bench_fig6_nmi_history.cpp.o.d"
  "bench_fig6_nmi_history"
  "bench_fig6_nmi_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_nmi_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
