# Empty dependencies file for bench_fig6_nmi_history.
# This may be replaced when dependencies are built.
