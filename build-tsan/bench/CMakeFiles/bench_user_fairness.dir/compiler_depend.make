# Empty compiler generated dependencies file for bench_user_fairness.
# This may be replaced when dependencies are built.
