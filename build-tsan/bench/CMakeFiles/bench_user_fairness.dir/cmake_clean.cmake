file(REMOVE_RECURSE
  "CMakeFiles/bench_user_fairness.dir/bench_user_fairness.cpp.o"
  "CMakeFiles/bench_user_fairness.dir/bench_user_fairness.cpp.o.d"
  "bench_user_fairness"
  "bench_user_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_user_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
