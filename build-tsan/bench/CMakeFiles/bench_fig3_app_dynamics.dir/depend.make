# Empty dependencies file for bench_fig3_app_dynamics.
# This may be replaced when dependencies are built.
