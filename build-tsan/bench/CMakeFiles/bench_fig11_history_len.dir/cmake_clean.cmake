file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_history_len.dir/bench_fig11_history_len.cpp.o"
  "CMakeFiles/bench_fig11_history_len.dir/bench_fig11_history_len.cpp.o.d"
  "bench_fig11_history_len"
  "bench_fig11_history_len.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_history_len.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
