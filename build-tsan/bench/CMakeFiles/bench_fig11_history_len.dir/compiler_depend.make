# Empty compiler generated dependencies file for bench_fig11_history_len.
# This may be replaced when dependencies are built.
