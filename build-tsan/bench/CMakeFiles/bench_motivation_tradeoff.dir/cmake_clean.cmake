file(REMOVE_RECURSE
  "CMakeFiles/bench_motivation_tradeoff.dir/bench_motivation_tradeoff.cpp.o"
  "CMakeFiles/bench_motivation_tradeoff.dir/bench_motivation_tradeoff.cpp.o.d"
  "bench_motivation_tradeoff"
  "bench_motivation_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motivation_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
