file(REMOVE_RECURSE
  "CMakeFiles/bench_workload_shape.dir/bench_workload_shape.cpp.o"
  "CMakeFiles/bench_workload_shape.dir/bench_workload_shape.cpp.o.d"
  "bench_workload_shape"
  "bench_workload_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workload_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
