# Empty compiler generated dependencies file for bench_workload_shape.
# This may be replaced when dependencies are built.
