# Empty dependencies file for bench_oracle_gap.
# This may be replaced when dependencies are built.
