file(REMOVE_RECURSE
  "CMakeFiles/bench_oracle_gap.dir/bench_oracle_gap.cpp.o"
  "CMakeFiles/bench_oracle_gap.dir/bench_oracle_gap.cpp.o.d"
  "bench_oracle_gap"
  "bench_oracle_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oracle_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
