file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_centroids.dir/bench_fig8_centroids.cpp.o"
  "CMakeFiles/bench_fig8_centroids.dir/bench_fig8_centroids.cpp.o.d"
  "bench_fig8_centroids"
  "bench_fig8_centroids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_centroids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
