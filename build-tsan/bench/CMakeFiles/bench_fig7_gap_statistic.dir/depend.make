# Empty dependencies file for bench_fig7_gap_statistic.
# This may be replaced when dependencies are built.
