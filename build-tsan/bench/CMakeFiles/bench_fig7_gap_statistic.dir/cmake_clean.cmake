file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_gap_statistic.dir/bench_fig7_gap_statistic.cpp.o"
  "CMakeFiles/bench_fig7_gap_statistic.dir/bench_fig7_gap_statistic.cpp.o.d"
  "bench_fig7_gap_statistic"
  "bench_fig7_gap_statistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_gap_statistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
