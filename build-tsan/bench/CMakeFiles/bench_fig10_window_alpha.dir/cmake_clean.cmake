file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_window_alpha.dir/bench_fig10_window_alpha.cpp.o"
  "CMakeFiles/bench_fig10_window_alpha.dir/bench_fig10_window_alpha.cpp.o.d"
  "bench_fig10_window_alpha"
  "bench_fig10_window_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_window_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
