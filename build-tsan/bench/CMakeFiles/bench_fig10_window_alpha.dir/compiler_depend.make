# Empty compiler generated dependencies file for bench_fig10_window_alpha.
# This may be replaced when dependencies are built.
