file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_s3.dir/bench_ablation_s3.cpp.o"
  "CMakeFiles/bench_ablation_s3.dir/bench_ablation_s3.cpp.o.d"
  "bench_ablation_s3"
  "bench_ablation_s3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_s3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
