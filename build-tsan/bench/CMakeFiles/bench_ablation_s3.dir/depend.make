# Empty dependencies file for bench_ablation_s3.
# This may be replaced when dependencies are built.
