file(REMOVE_RECURSE
  "CMakeFiles/repl.dir/s3/repl/replicated_driver.cpp.o"
  "CMakeFiles/repl.dir/s3/repl/replicated_driver.cpp.o.d"
  "CMakeFiles/repl.dir/s3/repl/replication_group.cpp.o"
  "CMakeFiles/repl.dir/s3/repl/replication_group.cpp.o.d"
  "librepl.a"
  "librepl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
