# Empty dependencies file for repl.
# This may be replaced when dependencies are built.
