file(REMOVE_RECURSE
  "librepl.a"
)
