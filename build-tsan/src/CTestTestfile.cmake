# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("apps")
subdirs("wlan")
subdirs("trace")
subdirs("sim")
subdirs("fault")
subdirs("analysis")
subdirs("cluster")
subdirs("social")
subdirs("check")
subdirs("runtime")
subdirs("repl")
subdirs("core")
subdirs("serve")
