# Empty dependencies file for core.
# This may be replaced when dependencies are built.
