file(REMOVE_RECURSE
  "libcore.a"
)
