file(REMOVE_RECURSE
  "CMakeFiles/core.dir/s3/core/baselines.cpp.o"
  "CMakeFiles/core.dir/s3/core/baselines.cpp.o.d"
  "CMakeFiles/core.dir/s3/core/evaluation.cpp.o"
  "CMakeFiles/core.dir/s3/core/evaluation.cpp.o.d"
  "CMakeFiles/core.dir/s3/core/online_s3.cpp.o"
  "CMakeFiles/core.dir/s3/core/online_s3.cpp.o.d"
  "CMakeFiles/core.dir/s3/core/oracle.cpp.o"
  "CMakeFiles/core.dir/s3/core/oracle.cpp.o.d"
  "CMakeFiles/core.dir/s3/core/rebalancer.cpp.o"
  "CMakeFiles/core.dir/s3/core/rebalancer.cpp.o.d"
  "CMakeFiles/core.dir/s3/core/s3_selector.cpp.o"
  "CMakeFiles/core.dir/s3/core/s3_selector.cpp.o.d"
  "CMakeFiles/core.dir/s3/core/selector_factory.cpp.o"
  "CMakeFiles/core.dir/s3/core/selector_factory.cpp.o.d"
  "libcore.a"
  "libcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
