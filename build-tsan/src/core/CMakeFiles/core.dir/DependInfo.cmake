
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/s3/core/baselines.cpp" "src/core/CMakeFiles/core.dir/s3/core/baselines.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/s3/core/baselines.cpp.o.d"
  "/root/repo/src/core/s3/core/evaluation.cpp" "src/core/CMakeFiles/core.dir/s3/core/evaluation.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/s3/core/evaluation.cpp.o.d"
  "/root/repo/src/core/s3/core/online_s3.cpp" "src/core/CMakeFiles/core.dir/s3/core/online_s3.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/s3/core/online_s3.cpp.o.d"
  "/root/repo/src/core/s3/core/oracle.cpp" "src/core/CMakeFiles/core.dir/s3/core/oracle.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/s3/core/oracle.cpp.o.d"
  "/root/repo/src/core/s3/core/rebalancer.cpp" "src/core/CMakeFiles/core.dir/s3/core/rebalancer.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/s3/core/rebalancer.cpp.o.d"
  "/root/repo/src/core/s3/core/s3_selector.cpp" "src/core/CMakeFiles/core.dir/s3/core/s3_selector.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/s3/core/s3_selector.cpp.o.d"
  "/root/repo/src/core/s3/core/selector_factory.cpp" "src/core/CMakeFiles/core.dir/s3/core/selector_factory.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/s3/core/selector_factory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/wlan/CMakeFiles/wlan.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fault/CMakeFiles/fault.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/runtime/CMakeFiles/runtime.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/analysis/CMakeFiles/analysis.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/social/CMakeFiles/social.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cluster/CMakeFiles/cluster.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/check/CMakeFiles/check.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/apps/CMakeFiles/apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
