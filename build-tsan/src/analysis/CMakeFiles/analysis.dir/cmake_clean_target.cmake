file(REMOVE_RECURSE
  "libanalysis.a"
)
