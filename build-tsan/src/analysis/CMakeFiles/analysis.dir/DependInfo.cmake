
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/s3/analysis/balance.cpp" "src/analysis/CMakeFiles/analysis.dir/s3/analysis/balance.cpp.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/s3/analysis/balance.cpp.o.d"
  "/root/repo/src/analysis/s3/analysis/churn.cpp" "src/analysis/CMakeFiles/analysis.dir/s3/analysis/churn.cpp.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/s3/analysis/churn.cpp.o.d"
  "/root/repo/src/analysis/s3/analysis/events.cpp" "src/analysis/CMakeFiles/analysis.dir/s3/analysis/events.cpp.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/s3/analysis/events.cpp.o.d"
  "/root/repo/src/analysis/s3/analysis/fairness.cpp" "src/analysis/CMakeFiles/analysis.dir/s3/analysis/fairness.cpp.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/s3/analysis/fairness.cpp.o.d"
  "/root/repo/src/analysis/s3/analysis/profiles.cpp" "src/analysis/CMakeFiles/analysis.dir/s3/analysis/profiles.cpp.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/s3/analysis/profiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/apps/CMakeFiles/apps.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/wlan/CMakeFiles/wlan.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
