file(REMOVE_RECURSE
  "CMakeFiles/analysis.dir/s3/analysis/balance.cpp.o"
  "CMakeFiles/analysis.dir/s3/analysis/balance.cpp.o.d"
  "CMakeFiles/analysis.dir/s3/analysis/churn.cpp.o"
  "CMakeFiles/analysis.dir/s3/analysis/churn.cpp.o.d"
  "CMakeFiles/analysis.dir/s3/analysis/events.cpp.o"
  "CMakeFiles/analysis.dir/s3/analysis/events.cpp.o.d"
  "CMakeFiles/analysis.dir/s3/analysis/fairness.cpp.o"
  "CMakeFiles/analysis.dir/s3/analysis/fairness.cpp.o.d"
  "CMakeFiles/analysis.dir/s3/analysis/profiles.cpp.o"
  "CMakeFiles/analysis.dir/s3/analysis/profiles.cpp.o.d"
  "libanalysis.a"
  "libanalysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
