# Empty dependencies file for analysis.
# This may be replaced when dependencies are built.
