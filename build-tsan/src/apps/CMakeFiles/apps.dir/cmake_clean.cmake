file(REMOVE_RECURSE
  "CMakeFiles/apps.dir/s3/apps/app_category.cpp.o"
  "CMakeFiles/apps.dir/s3/apps/app_category.cpp.o.d"
  "CMakeFiles/apps.dir/s3/apps/classifier.cpp.o"
  "CMakeFiles/apps.dir/s3/apps/classifier.cpp.o.d"
  "CMakeFiles/apps.dir/s3/apps/flow_synthesis.cpp.o"
  "CMakeFiles/apps.dir/s3/apps/flow_synthesis.cpp.o.d"
  "CMakeFiles/apps.dir/s3/apps/profile.cpp.o"
  "CMakeFiles/apps.dir/s3/apps/profile.cpp.o.d"
  "libapps.a"
  "libapps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
