
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/s3/apps/app_category.cpp" "src/apps/CMakeFiles/apps.dir/s3/apps/app_category.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/s3/apps/app_category.cpp.o.d"
  "/root/repo/src/apps/s3/apps/classifier.cpp" "src/apps/CMakeFiles/apps.dir/s3/apps/classifier.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/s3/apps/classifier.cpp.o.d"
  "/root/repo/src/apps/s3/apps/flow_synthesis.cpp" "src/apps/CMakeFiles/apps.dir/s3/apps/flow_synthesis.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/s3/apps/flow_synthesis.cpp.o.d"
  "/root/repo/src/apps/s3/apps/profile.cpp" "src/apps/CMakeFiles/apps.dir/s3/apps/profile.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/s3/apps/profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
