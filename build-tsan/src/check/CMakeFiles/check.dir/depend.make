# Empty dependencies file for check.
# This may be replaced when dependencies are built.
