file(REMOVE_RECURSE
  "CMakeFiles/check.dir/s3/check/contract.cpp.o"
  "CMakeFiles/check.dir/s3/check/contract.cpp.o.d"
  "CMakeFiles/check.dir/s3/check/validators.cpp.o"
  "CMakeFiles/check.dir/s3/check/validators.cpp.o.d"
  "libcheck.a"
  "libcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
