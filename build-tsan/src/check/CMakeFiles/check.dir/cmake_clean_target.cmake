file(REMOVE_RECURSE
  "libcheck.a"
)
