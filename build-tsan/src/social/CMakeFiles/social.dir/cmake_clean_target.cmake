file(REMOVE_RECURSE
  "libsocial.a"
)
