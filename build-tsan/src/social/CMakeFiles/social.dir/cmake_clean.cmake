file(REMOVE_RECURSE
  "CMakeFiles/social.dir/s3/social/clique.cpp.o"
  "CMakeFiles/social.dir/s3/social/clique.cpp.o.d"
  "CMakeFiles/social.dir/s3/social/concurrent_pair_store.cpp.o"
  "CMakeFiles/social.dir/s3/social/concurrent_pair_store.cpp.o.d"
  "CMakeFiles/social.dir/s3/social/graph.cpp.o"
  "CMakeFiles/social.dir/s3/social/graph.cpp.o.d"
  "CMakeFiles/social.dir/s3/social/model_io.cpp.o"
  "CMakeFiles/social.dir/s3/social/model_io.cpp.o.d"
  "CMakeFiles/social.dir/s3/social/pair_store.cpp.o"
  "CMakeFiles/social.dir/s3/social/pair_store.cpp.o.d"
  "CMakeFiles/social.dir/s3/social/social_index.cpp.o"
  "CMakeFiles/social.dir/s3/social/social_index.cpp.o.d"
  "CMakeFiles/social.dir/s3/social/typing.cpp.o"
  "CMakeFiles/social.dir/s3/social/typing.cpp.o.d"
  "libsocial.a"
  "libsocial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
