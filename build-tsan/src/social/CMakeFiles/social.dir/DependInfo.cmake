
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/social/s3/social/clique.cpp" "src/social/CMakeFiles/social.dir/s3/social/clique.cpp.o" "gcc" "src/social/CMakeFiles/social.dir/s3/social/clique.cpp.o.d"
  "/root/repo/src/social/s3/social/concurrent_pair_store.cpp" "src/social/CMakeFiles/social.dir/s3/social/concurrent_pair_store.cpp.o" "gcc" "src/social/CMakeFiles/social.dir/s3/social/concurrent_pair_store.cpp.o.d"
  "/root/repo/src/social/s3/social/graph.cpp" "src/social/CMakeFiles/social.dir/s3/social/graph.cpp.o" "gcc" "src/social/CMakeFiles/social.dir/s3/social/graph.cpp.o.d"
  "/root/repo/src/social/s3/social/model_io.cpp" "src/social/CMakeFiles/social.dir/s3/social/model_io.cpp.o" "gcc" "src/social/CMakeFiles/social.dir/s3/social/model_io.cpp.o.d"
  "/root/repo/src/social/s3/social/pair_store.cpp" "src/social/CMakeFiles/social.dir/s3/social/pair_store.cpp.o" "gcc" "src/social/CMakeFiles/social.dir/s3/social/pair_store.cpp.o.d"
  "/root/repo/src/social/s3/social/social_index.cpp" "src/social/CMakeFiles/social.dir/s3/social/social_index.cpp.o" "gcc" "src/social/CMakeFiles/social.dir/s3/social/social_index.cpp.o.d"
  "/root/repo/src/social/s3/social/typing.cpp" "src/social/CMakeFiles/social.dir/s3/social/typing.cpp.o" "gcc" "src/social/CMakeFiles/social.dir/s3/social/typing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/apps/CMakeFiles/apps.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/analysis/CMakeFiles/analysis.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cluster/CMakeFiles/cluster.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/wlan/CMakeFiles/wlan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
