# Empty dependencies file for social.
# This may be replaced when dependencies are built.
