
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/s3/sim/selector.cpp" "src/sim/CMakeFiles/sim.dir/s3/sim/selector.cpp.o" "gcc" "src/sim/CMakeFiles/sim.dir/s3/sim/selector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/wlan/CMakeFiles/wlan.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/apps/CMakeFiles/apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
