file(REMOVE_RECURSE
  "libsim.a"
)
