# Empty dependencies file for sim.
# This may be replaced when dependencies are built.
