file(REMOVE_RECURSE
  "CMakeFiles/sim.dir/s3/sim/selector.cpp.o"
  "CMakeFiles/sim.dir/s3/sim/selector.cpp.o.d"
  "libsim.a"
  "libsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
