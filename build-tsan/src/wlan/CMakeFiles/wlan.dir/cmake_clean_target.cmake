file(REMOVE_RECURSE
  "libwlan.a"
)
