
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wlan/s3/wlan/contention.cpp" "src/wlan/CMakeFiles/wlan.dir/s3/wlan/contention.cpp.o" "gcc" "src/wlan/CMakeFiles/wlan.dir/s3/wlan/contention.cpp.o.d"
  "/root/repo/src/wlan/s3/wlan/network.cpp" "src/wlan/CMakeFiles/wlan.dir/s3/wlan/network.cpp.o" "gcc" "src/wlan/CMakeFiles/wlan.dir/s3/wlan/network.cpp.o.d"
  "/root/repo/src/wlan/s3/wlan/radio.cpp" "src/wlan/CMakeFiles/wlan.dir/s3/wlan/radio.cpp.o" "gcc" "src/wlan/CMakeFiles/wlan.dir/s3/wlan/radio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
