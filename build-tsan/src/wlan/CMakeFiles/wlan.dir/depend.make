# Empty dependencies file for wlan.
# This may be replaced when dependencies are built.
