file(REMOVE_RECURSE
  "CMakeFiles/wlan.dir/s3/wlan/contention.cpp.o"
  "CMakeFiles/wlan.dir/s3/wlan/contention.cpp.o.d"
  "CMakeFiles/wlan.dir/s3/wlan/network.cpp.o"
  "CMakeFiles/wlan.dir/s3/wlan/network.cpp.o.d"
  "CMakeFiles/wlan.dir/s3/wlan/radio.cpp.o"
  "CMakeFiles/wlan.dir/s3/wlan/radio.cpp.o.d"
  "libwlan.a"
  "libwlan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
