file(REMOVE_RECURSE
  "libtrace.a"
)
