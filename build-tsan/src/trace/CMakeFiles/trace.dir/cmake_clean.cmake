file(REMOVE_RECURSE
  "CMakeFiles/trace.dir/s3/trace/binary_io.cpp.o"
  "CMakeFiles/trace.dir/s3/trace/binary_io.cpp.o.d"
  "CMakeFiles/trace.dir/s3/trace/generator.cpp.o"
  "CMakeFiles/trace.dir/s3/trace/generator.cpp.o.d"
  "CMakeFiles/trace.dir/s3/trace/io.cpp.o"
  "CMakeFiles/trace.dir/s3/trace/io.cpp.o.d"
  "CMakeFiles/trace.dir/s3/trace/trace.cpp.o"
  "CMakeFiles/trace.dir/s3/trace/trace.cpp.o.d"
  "libtrace.a"
  "libtrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
