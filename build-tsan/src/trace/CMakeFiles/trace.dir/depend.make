# Empty dependencies file for trace.
# This may be replaced when dependencies are built.
