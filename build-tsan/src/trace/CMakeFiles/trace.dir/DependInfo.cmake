
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/s3/trace/binary_io.cpp" "src/trace/CMakeFiles/trace.dir/s3/trace/binary_io.cpp.o" "gcc" "src/trace/CMakeFiles/trace.dir/s3/trace/binary_io.cpp.o.d"
  "/root/repo/src/trace/s3/trace/generator.cpp" "src/trace/CMakeFiles/trace.dir/s3/trace/generator.cpp.o" "gcc" "src/trace/CMakeFiles/trace.dir/s3/trace/generator.cpp.o.d"
  "/root/repo/src/trace/s3/trace/io.cpp" "src/trace/CMakeFiles/trace.dir/s3/trace/io.cpp.o" "gcc" "src/trace/CMakeFiles/trace.dir/s3/trace/io.cpp.o.d"
  "/root/repo/src/trace/s3/trace/trace.cpp" "src/trace/CMakeFiles/trace.dir/s3/trace/trace.cpp.o" "gcc" "src/trace/CMakeFiles/trace.dir/s3/trace/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/apps/CMakeFiles/apps.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/wlan/CMakeFiles/wlan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
