# Empty dependencies file for fault.
# This may be replaced when dependencies are built.
