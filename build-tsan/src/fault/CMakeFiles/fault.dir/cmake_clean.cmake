file(REMOVE_RECURSE
  "CMakeFiles/fault.dir/s3/fault/degradation.cpp.o"
  "CMakeFiles/fault.dir/s3/fault/degradation.cpp.o.d"
  "CMakeFiles/fault.dir/s3/fault/fault_injector.cpp.o"
  "CMakeFiles/fault.dir/s3/fault/fault_injector.cpp.o.d"
  "CMakeFiles/fault.dir/s3/fault/fault_plan.cpp.o"
  "CMakeFiles/fault.dir/s3/fault/fault_plan.cpp.o.d"
  "libfault.a"
  "libfault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
