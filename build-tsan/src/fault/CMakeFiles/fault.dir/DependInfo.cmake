
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/s3/fault/degradation.cpp" "src/fault/CMakeFiles/fault.dir/s3/fault/degradation.cpp.o" "gcc" "src/fault/CMakeFiles/fault.dir/s3/fault/degradation.cpp.o.d"
  "/root/repo/src/fault/s3/fault/fault_injector.cpp" "src/fault/CMakeFiles/fault.dir/s3/fault/fault_injector.cpp.o" "gcc" "src/fault/CMakeFiles/fault.dir/s3/fault/fault_injector.cpp.o.d"
  "/root/repo/src/fault/s3/fault/fault_plan.cpp" "src/fault/CMakeFiles/fault.dir/s3/fault/fault_plan.cpp.o" "gcc" "src/fault/CMakeFiles/fault.dir/s3/fault/fault_plan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/wlan/CMakeFiles/wlan.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/apps/CMakeFiles/apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
