file(REMOVE_RECURSE
  "libfault.a"
)
