file(REMOVE_RECURSE
  "libruntime.a"
)
