# Empty dependencies file for runtime.
# This may be replaced when dependencies are built.
