file(REMOVE_RECURSE
  "CMakeFiles/runtime.dir/s3/runtime/controller_engine.cpp.o"
  "CMakeFiles/runtime.dir/s3/runtime/controller_engine.cpp.o.d"
  "CMakeFiles/runtime.dir/s3/runtime/replay_compat.cpp.o"
  "CMakeFiles/runtime.dir/s3/runtime/replay_compat.cpp.o.d"
  "CMakeFiles/runtime.dir/s3/runtime/replay_driver.cpp.o"
  "CMakeFiles/runtime.dir/s3/runtime/replay_driver.cpp.o.d"
  "libruntime.a"
  "libruntime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
