# Empty dependencies file for util.
# This may be replaced when dependencies are built.
