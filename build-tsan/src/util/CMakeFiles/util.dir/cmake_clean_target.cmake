file(REMOVE_RECURSE
  "libutil.a"
)
