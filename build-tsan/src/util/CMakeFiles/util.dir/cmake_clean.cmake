file(REMOVE_RECURSE
  "CMakeFiles/util.dir/s3/util/argspec.cpp.o"
  "CMakeFiles/util.dir/s3/util/argspec.cpp.o.d"
  "CMakeFiles/util.dir/s3/util/cdf.cpp.o"
  "CMakeFiles/util.dir/s3/util/cdf.cpp.o.d"
  "CMakeFiles/util.dir/s3/util/entropy.cpp.o"
  "CMakeFiles/util.dir/s3/util/entropy.cpp.o.d"
  "CMakeFiles/util.dir/s3/util/metrics.cpp.o"
  "CMakeFiles/util.dir/s3/util/metrics.cpp.o.d"
  "CMakeFiles/util.dir/s3/util/rng.cpp.o"
  "CMakeFiles/util.dir/s3/util/rng.cpp.o.d"
  "CMakeFiles/util.dir/s3/util/sim_time.cpp.o"
  "CMakeFiles/util.dir/s3/util/sim_time.cpp.o.d"
  "CMakeFiles/util.dir/s3/util/stats.cpp.o"
  "CMakeFiles/util.dir/s3/util/stats.cpp.o.d"
  "CMakeFiles/util.dir/s3/util/table.cpp.o"
  "CMakeFiles/util.dir/s3/util/table.cpp.o.d"
  "libutil.a"
  "libutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
