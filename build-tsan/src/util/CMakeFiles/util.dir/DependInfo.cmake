
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/s3/util/argspec.cpp" "src/util/CMakeFiles/util.dir/s3/util/argspec.cpp.o" "gcc" "src/util/CMakeFiles/util.dir/s3/util/argspec.cpp.o.d"
  "/root/repo/src/util/s3/util/cdf.cpp" "src/util/CMakeFiles/util.dir/s3/util/cdf.cpp.o" "gcc" "src/util/CMakeFiles/util.dir/s3/util/cdf.cpp.o.d"
  "/root/repo/src/util/s3/util/entropy.cpp" "src/util/CMakeFiles/util.dir/s3/util/entropy.cpp.o" "gcc" "src/util/CMakeFiles/util.dir/s3/util/entropy.cpp.o.d"
  "/root/repo/src/util/s3/util/metrics.cpp" "src/util/CMakeFiles/util.dir/s3/util/metrics.cpp.o" "gcc" "src/util/CMakeFiles/util.dir/s3/util/metrics.cpp.o.d"
  "/root/repo/src/util/s3/util/rng.cpp" "src/util/CMakeFiles/util.dir/s3/util/rng.cpp.o" "gcc" "src/util/CMakeFiles/util.dir/s3/util/rng.cpp.o.d"
  "/root/repo/src/util/s3/util/sim_time.cpp" "src/util/CMakeFiles/util.dir/s3/util/sim_time.cpp.o" "gcc" "src/util/CMakeFiles/util.dir/s3/util/sim_time.cpp.o.d"
  "/root/repo/src/util/s3/util/stats.cpp" "src/util/CMakeFiles/util.dir/s3/util/stats.cpp.o" "gcc" "src/util/CMakeFiles/util.dir/s3/util/stats.cpp.o.d"
  "/root/repo/src/util/s3/util/table.cpp" "src/util/CMakeFiles/util.dir/s3/util/table.cpp.o" "gcc" "src/util/CMakeFiles/util.dir/s3/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
