# Empty compiler generated dependencies file for serve.
# This may be replaced when dependencies are built.
