file(REMOVE_RECURSE
  "libserve.a"
)
