file(REMOVE_RECURSE
  "CMakeFiles/serve.dir/s3/serve/line_protocol.cpp.o"
  "CMakeFiles/serve.dir/s3/serve/line_protocol.cpp.o.d"
  "CMakeFiles/serve.dir/s3/serve/serve_pipeline.cpp.o"
  "CMakeFiles/serve.dir/s3/serve/serve_pipeline.cpp.o.d"
  "CMakeFiles/serve.dir/s3/serve/shared_social_model.cpp.o"
  "CMakeFiles/serve.dir/s3/serve/shared_social_model.cpp.o.d"
  "libserve.a"
  "libserve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
