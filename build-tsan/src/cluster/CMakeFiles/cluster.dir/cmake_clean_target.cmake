file(REMOVE_RECURSE
  "libcluster.a"
)
