
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/s3/cluster/gap_statistic.cpp" "src/cluster/CMakeFiles/cluster.dir/s3/cluster/gap_statistic.cpp.o" "gcc" "src/cluster/CMakeFiles/cluster.dir/s3/cluster/gap_statistic.cpp.o.d"
  "/root/repo/src/cluster/s3/cluster/kmeans.cpp" "src/cluster/CMakeFiles/cluster.dir/s3/cluster/kmeans.cpp.o" "gcc" "src/cluster/CMakeFiles/cluster.dir/s3/cluster/kmeans.cpp.o.d"
  "/root/repo/src/cluster/s3/cluster/pca.cpp" "src/cluster/CMakeFiles/cluster.dir/s3/cluster/pca.cpp.o" "gcc" "src/cluster/CMakeFiles/cluster.dir/s3/cluster/pca.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
