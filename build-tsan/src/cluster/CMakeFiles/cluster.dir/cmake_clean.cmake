file(REMOVE_RECURSE
  "CMakeFiles/cluster.dir/s3/cluster/gap_statistic.cpp.o"
  "CMakeFiles/cluster.dir/s3/cluster/gap_statistic.cpp.o.d"
  "CMakeFiles/cluster.dir/s3/cluster/kmeans.cpp.o"
  "CMakeFiles/cluster.dir/s3/cluster/kmeans.cpp.o.d"
  "CMakeFiles/cluster.dir/s3/cluster/pca.cpp.o"
  "CMakeFiles/cluster.dir/s3/cluster/pca.cpp.o.d"
  "libcluster.a"
  "libcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
