# Empty dependencies file for cluster.
# This may be replaced when dependencies are built.
