file(REMOVE_RECURSE
  "CMakeFiles/s3lb.dir/s3lb_cli.cpp.o"
  "CMakeFiles/s3lb.dir/s3lb_cli.cpp.o.d"
  "s3lb"
  "s3lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
