# Empty dependencies file for s3lb.
# This may be replaced when dependencies are built.
