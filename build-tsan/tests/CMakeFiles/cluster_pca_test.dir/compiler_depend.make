# Empty compiler generated dependencies file for cluster_pca_test.
# This may be replaced when dependencies are built.
