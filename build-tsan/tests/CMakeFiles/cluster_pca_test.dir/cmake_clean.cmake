file(REMOVE_RECURSE
  "CMakeFiles/cluster_pca_test.dir/cluster/pca_test.cpp.o"
  "CMakeFiles/cluster_pca_test.dir/cluster/pca_test.cpp.o.d"
  "cluster_pca_test"
  "cluster_pca_test.pdb"
  "cluster_pca_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_pca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
