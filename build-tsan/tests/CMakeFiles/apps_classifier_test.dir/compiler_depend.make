# Empty compiler generated dependencies file for apps_classifier_test.
# This may be replaced when dependencies are built.
