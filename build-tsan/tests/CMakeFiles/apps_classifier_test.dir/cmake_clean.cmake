file(REMOVE_RECURSE
  "CMakeFiles/apps_classifier_test.dir/apps/classifier_test.cpp.o"
  "CMakeFiles/apps_classifier_test.dir/apps/classifier_test.cpp.o.d"
  "apps_classifier_test"
  "apps_classifier_test.pdb"
  "apps_classifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_classifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
