
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/replay_driver_test.cpp" "tests/CMakeFiles/runtime_replay_driver_test.dir/runtime/replay_driver_test.cpp.o" "gcc" "tests/CMakeFiles/runtime_replay_driver_test.dir/runtime/replay_driver_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/repl/CMakeFiles/repl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/runtime/CMakeFiles/runtime.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/check/CMakeFiles/check.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/social/CMakeFiles/social.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cluster/CMakeFiles/cluster.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/analysis/CMakeFiles/analysis.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fault/CMakeFiles/fault.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/wlan/CMakeFiles/wlan.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/apps/CMakeFiles/apps.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
