# Empty dependencies file for runtime_replay_driver_test.
# This may be replaced when dependencies are built.
