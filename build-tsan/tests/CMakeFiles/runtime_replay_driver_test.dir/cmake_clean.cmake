file(REMOVE_RECURSE
  "CMakeFiles/runtime_replay_driver_test.dir/runtime/replay_driver_test.cpp.o"
  "CMakeFiles/runtime_replay_driver_test.dir/runtime/replay_driver_test.cpp.o.d"
  "runtime_replay_driver_test"
  "runtime_replay_driver_test.pdb"
  "runtime_replay_driver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_replay_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
