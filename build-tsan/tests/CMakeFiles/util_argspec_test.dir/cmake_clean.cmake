file(REMOVE_RECURSE
  "CMakeFiles/util_argspec_test.dir/util/argspec_test.cpp.o"
  "CMakeFiles/util_argspec_test.dir/util/argspec_test.cpp.o.d"
  "util_argspec_test"
  "util_argspec_test.pdb"
  "util_argspec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_argspec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
