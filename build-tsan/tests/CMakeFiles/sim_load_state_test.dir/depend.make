# Empty dependencies file for sim_load_state_test.
# This may be replaced when dependencies are built.
