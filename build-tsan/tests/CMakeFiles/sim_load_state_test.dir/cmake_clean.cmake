file(REMOVE_RECURSE
  "CMakeFiles/sim_load_state_test.dir/sim/load_state_test.cpp.o"
  "CMakeFiles/sim_load_state_test.dir/sim/load_state_test.cpp.o.d"
  "sim_load_state_test"
  "sim_load_state_test.pdb"
  "sim_load_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_load_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
