file(REMOVE_RECURSE
  "CMakeFiles/analysis_balance_test.dir/analysis/balance_test.cpp.o"
  "CMakeFiles/analysis_balance_test.dir/analysis/balance_test.cpp.o.d"
  "analysis_balance_test"
  "analysis_balance_test.pdb"
  "analysis_balance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_balance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
