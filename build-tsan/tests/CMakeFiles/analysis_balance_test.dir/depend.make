# Empty dependencies file for analysis_balance_test.
# This may be replaced when dependencies are built.
