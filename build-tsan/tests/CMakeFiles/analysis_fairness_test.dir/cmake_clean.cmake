file(REMOVE_RECURSE
  "CMakeFiles/analysis_fairness_test.dir/analysis/fairness_test.cpp.o"
  "CMakeFiles/analysis_fairness_test.dir/analysis/fairness_test.cpp.o.d"
  "analysis_fairness_test"
  "analysis_fairness_test.pdb"
  "analysis_fairness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_fairness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
