# Empty dependencies file for analysis_fairness_test.
# This may be replaced when dependencies are built.
