# Empty dependencies file for apps_profile_test.
# This may be replaced when dependencies are built.
