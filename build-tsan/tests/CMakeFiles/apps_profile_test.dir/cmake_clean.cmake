file(REMOVE_RECURSE
  "CMakeFiles/apps_profile_test.dir/apps/profile_test.cpp.o"
  "CMakeFiles/apps_profile_test.dir/apps/profile_test.cpp.o.d"
  "apps_profile_test"
  "apps_profile_test.pdb"
  "apps_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
