file(REMOVE_RECURSE
  "CMakeFiles/check_contract_test.dir/check/contract_test.cpp.o"
  "CMakeFiles/check_contract_test.dir/check/contract_test.cpp.o.d"
  "check_contract_test"
  "check_contract_test.pdb"
  "check_contract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
