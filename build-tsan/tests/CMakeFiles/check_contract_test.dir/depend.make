# Empty dependencies file for check_contract_test.
# This may be replaced when dependencies are built.
