file(REMOVE_RECURSE
  "CMakeFiles/social_concurrent_pair_store_test.dir/social/concurrent_pair_store_test.cpp.o"
  "CMakeFiles/social_concurrent_pair_store_test.dir/social/concurrent_pair_store_test.cpp.o.d"
  "social_concurrent_pair_store_test"
  "social_concurrent_pair_store_test.pdb"
  "social_concurrent_pair_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_concurrent_pair_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
