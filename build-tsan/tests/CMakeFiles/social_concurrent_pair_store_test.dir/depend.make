# Empty dependencies file for social_concurrent_pair_store_test.
# This may be replaced when dependencies are built.
