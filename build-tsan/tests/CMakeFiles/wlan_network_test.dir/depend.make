# Empty dependencies file for wlan_network_test.
# This may be replaced when dependencies are built.
