file(REMOVE_RECURSE
  "CMakeFiles/wlan_network_test.dir/wlan/network_test.cpp.o"
  "CMakeFiles/wlan_network_test.dir/wlan/network_test.cpp.o.d"
  "wlan_network_test"
  "wlan_network_test.pdb"
  "wlan_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlan_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
