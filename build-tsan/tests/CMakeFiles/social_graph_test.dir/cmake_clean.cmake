file(REMOVE_RECURSE
  "CMakeFiles/social_graph_test.dir/social/graph_test.cpp.o"
  "CMakeFiles/social_graph_test.dir/social/graph_test.cpp.o.d"
  "social_graph_test"
  "social_graph_test.pdb"
  "social_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
