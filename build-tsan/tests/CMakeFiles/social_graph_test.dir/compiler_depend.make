# Empty compiler generated dependencies file for social_graph_test.
# This may be replaced when dependencies are built.
