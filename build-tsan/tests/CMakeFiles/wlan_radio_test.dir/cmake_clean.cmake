file(REMOVE_RECURSE
  "CMakeFiles/wlan_radio_test.dir/wlan/radio_test.cpp.o"
  "CMakeFiles/wlan_radio_test.dir/wlan/radio_test.cpp.o.d"
  "wlan_radio_test"
  "wlan_radio_test.pdb"
  "wlan_radio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlan_radio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
