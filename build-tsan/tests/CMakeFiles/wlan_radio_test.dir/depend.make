# Empty dependencies file for wlan_radio_test.
# This may be replaced when dependencies are built.
