file(REMOVE_RECURSE
  "CMakeFiles/core_baselines_test.dir/core/baselines_test.cpp.o"
  "CMakeFiles/core_baselines_test.dir/core/baselines_test.cpp.o.d"
  "core_baselines_test"
  "core_baselines_test.pdb"
  "core_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
