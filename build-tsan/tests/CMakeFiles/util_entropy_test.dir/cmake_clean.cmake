file(REMOVE_RECURSE
  "CMakeFiles/util_entropy_test.dir/util/entropy_test.cpp.o"
  "CMakeFiles/util_entropy_test.dir/util/entropy_test.cpp.o.d"
  "util_entropy_test"
  "util_entropy_test.pdb"
  "util_entropy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_entropy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
