# Empty compiler generated dependencies file for util_entropy_test.
# This may be replaced when dependencies are built.
