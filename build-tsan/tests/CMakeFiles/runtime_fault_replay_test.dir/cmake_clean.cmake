file(REMOVE_RECURSE
  "CMakeFiles/runtime_fault_replay_test.dir/runtime/fault_replay_test.cpp.o"
  "CMakeFiles/runtime_fault_replay_test.dir/runtime/fault_replay_test.cpp.o.d"
  "runtime_fault_replay_test"
  "runtime_fault_replay_test.pdb"
  "runtime_fault_replay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_fault_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
