# Empty dependencies file for analysis_profiles_test.
# This may be replaced when dependencies are built.
