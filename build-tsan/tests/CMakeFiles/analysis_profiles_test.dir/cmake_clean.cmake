file(REMOVE_RECURSE
  "CMakeFiles/analysis_profiles_test.dir/analysis/profiles_test.cpp.o"
  "CMakeFiles/analysis_profiles_test.dir/analysis/profiles_test.cpp.o.d"
  "analysis_profiles_test"
  "analysis_profiles_test.pdb"
  "analysis_profiles_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_profiles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
