file(REMOVE_RECURSE
  "CMakeFiles/social_typing_test.dir/social/typing_test.cpp.o"
  "CMakeFiles/social_typing_test.dir/social/typing_test.cpp.o.d"
  "social_typing_test"
  "social_typing_test.pdb"
  "social_typing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_typing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
