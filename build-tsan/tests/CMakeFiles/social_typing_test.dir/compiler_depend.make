# Empty compiler generated dependencies file for social_typing_test.
# This may be replaced when dependencies are built.
