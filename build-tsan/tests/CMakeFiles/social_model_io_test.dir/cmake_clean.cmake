file(REMOVE_RECURSE
  "CMakeFiles/social_model_io_test.dir/social/model_io_test.cpp.o"
  "CMakeFiles/social_model_io_test.dir/social/model_io_test.cpp.o.d"
  "social_model_io_test"
  "social_model_io_test.pdb"
  "social_model_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_model_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
