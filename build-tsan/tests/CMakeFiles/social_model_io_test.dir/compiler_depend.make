# Empty compiler generated dependencies file for social_model_io_test.
# This may be replaced when dependencies are built.
