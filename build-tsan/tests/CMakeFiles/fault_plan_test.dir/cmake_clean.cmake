file(REMOVE_RECURSE
  "CMakeFiles/fault_plan_test.dir/fault/fault_plan_test.cpp.o"
  "CMakeFiles/fault_plan_test.dir/fault/fault_plan_test.cpp.o.d"
  "fault_plan_test"
  "fault_plan_test.pdb"
  "fault_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
