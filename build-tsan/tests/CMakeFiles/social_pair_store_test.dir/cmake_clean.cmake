file(REMOVE_RECURSE
  "CMakeFiles/social_pair_store_test.dir/social/pair_store_test.cpp.o"
  "CMakeFiles/social_pair_store_test.dir/social/pair_store_test.cpp.o.d"
  "social_pair_store_test"
  "social_pair_store_test.pdb"
  "social_pair_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_pair_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
