# Empty dependencies file for social_pair_store_test.
# This may be replaced when dependencies are built.
