file(REMOVE_RECURSE
  "CMakeFiles/fault_injector_test.dir/fault/fault_injector_test.cpp.o"
  "CMakeFiles/fault_injector_test.dir/fault/fault_injector_test.cpp.o.d"
  "fault_injector_test"
  "fault_injector_test.pdb"
  "fault_injector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_injector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
