# Empty compiler generated dependencies file for fault_injector_test.
# This may be replaced when dependencies are built.
