file(REMOVE_RECURSE
  "CMakeFiles/repl_replication_test.dir/repl/replication_test.cpp.o"
  "CMakeFiles/repl_replication_test.dir/repl/replication_test.cpp.o.d"
  "repl_replication_test"
  "repl_replication_test.pdb"
  "repl_replication_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repl_replication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
