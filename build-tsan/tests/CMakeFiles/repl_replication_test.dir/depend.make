# Empty dependencies file for repl_replication_test.
# This may be replaced when dependencies are built.
