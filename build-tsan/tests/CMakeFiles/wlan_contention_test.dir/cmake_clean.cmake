file(REMOVE_RECURSE
  "CMakeFiles/wlan_contention_test.dir/wlan/contention_test.cpp.o"
  "CMakeFiles/wlan_contention_test.dir/wlan/contention_test.cpp.o.d"
  "wlan_contention_test"
  "wlan_contention_test.pdb"
  "wlan_contention_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlan_contention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
