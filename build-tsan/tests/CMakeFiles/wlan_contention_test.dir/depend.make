# Empty dependencies file for wlan_contention_test.
# This may be replaced when dependencies are built.
