# Empty dependencies file for sim_replay_test.
# This may be replaced when dependencies are built.
