file(REMOVE_RECURSE
  "CMakeFiles/sim_replay_test.dir/sim/replay_test.cpp.o"
  "CMakeFiles/sim_replay_test.dir/sim/replay_test.cpp.o.d"
  "sim_replay_test"
  "sim_replay_test.pdb"
  "sim_replay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
