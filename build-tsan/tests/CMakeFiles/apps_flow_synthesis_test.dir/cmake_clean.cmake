file(REMOVE_RECURSE
  "CMakeFiles/apps_flow_synthesis_test.dir/apps/flow_synthesis_test.cpp.o"
  "CMakeFiles/apps_flow_synthesis_test.dir/apps/flow_synthesis_test.cpp.o.d"
  "apps_flow_synthesis_test"
  "apps_flow_synthesis_test.pdb"
  "apps_flow_synthesis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_flow_synthesis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
