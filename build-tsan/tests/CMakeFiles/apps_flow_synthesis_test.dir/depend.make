# Empty dependencies file for apps_flow_synthesis_test.
# This may be replaced when dependencies are built.
