file(REMOVE_RECURSE
  "CMakeFiles/trace_trace_test.dir/trace/trace_test.cpp.o"
  "CMakeFiles/trace_trace_test.dir/trace/trace_test.cpp.o.d"
  "trace_trace_test"
  "trace_trace_test.pdb"
  "trace_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
