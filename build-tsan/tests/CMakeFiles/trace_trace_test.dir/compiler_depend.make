# Empty compiler generated dependencies file for trace_trace_test.
# This may be replaced when dependencies are built.
