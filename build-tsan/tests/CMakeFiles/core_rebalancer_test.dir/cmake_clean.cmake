file(REMOVE_RECURSE
  "CMakeFiles/core_rebalancer_test.dir/core/rebalancer_test.cpp.o"
  "CMakeFiles/core_rebalancer_test.dir/core/rebalancer_test.cpp.o.d"
  "core_rebalancer_test"
  "core_rebalancer_test.pdb"
  "core_rebalancer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_rebalancer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
