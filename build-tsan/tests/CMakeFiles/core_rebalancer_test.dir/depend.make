# Empty dependencies file for core_rebalancer_test.
# This may be replaced when dependencies are built.
