file(REMOVE_RECURSE
  "CMakeFiles/analysis_churn_test.dir/analysis/churn_test.cpp.o"
  "CMakeFiles/analysis_churn_test.dir/analysis/churn_test.cpp.o.d"
  "analysis_churn_test"
  "analysis_churn_test.pdb"
  "analysis_churn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_churn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
