# Empty compiler generated dependencies file for analysis_churn_test.
# This may be replaced when dependencies are built.
