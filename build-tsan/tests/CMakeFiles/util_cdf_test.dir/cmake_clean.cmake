file(REMOVE_RECURSE
  "CMakeFiles/util_cdf_test.dir/util/cdf_test.cpp.o"
  "CMakeFiles/util_cdf_test.dir/util/cdf_test.cpp.o.d"
  "util_cdf_test"
  "util_cdf_test.pdb"
  "util_cdf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_cdf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
