# Empty compiler generated dependencies file for util_cdf_test.
# This may be replaced when dependencies are built.
