file(REMOVE_RECURSE
  "CMakeFiles/social_clique_test.dir/social/clique_test.cpp.o"
  "CMakeFiles/social_clique_test.dir/social/clique_test.cpp.o.d"
  "social_clique_test"
  "social_clique_test.pdb"
  "social_clique_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_clique_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
