# Empty dependencies file for social_clique_test.
# This may be replaced when dependencies are built.
