file(REMOVE_RECURSE
  "CMakeFiles/social_index_test.dir/social/social_index_test.cpp.o"
  "CMakeFiles/social_index_test.dir/social/social_index_test.cpp.o.d"
  "social_index_test"
  "social_index_test.pdb"
  "social_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
