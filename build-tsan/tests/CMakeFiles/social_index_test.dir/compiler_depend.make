# Empty compiler generated dependencies file for social_index_test.
# This may be replaced when dependencies are built.
