file(REMOVE_RECURSE
  "CMakeFiles/core_online_s3_test.dir/core/online_s3_test.cpp.o"
  "CMakeFiles/core_online_s3_test.dir/core/online_s3_test.cpp.o.d"
  "core_online_s3_test"
  "core_online_s3_test.pdb"
  "core_online_s3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_online_s3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
