# Empty dependencies file for core_online_s3_test.
# This may be replaced when dependencies are built.
