# Empty compiler generated dependencies file for check_validators_test.
# This may be replaced when dependencies are built.
