file(REMOVE_RECURSE
  "CMakeFiles/check_validators_test.dir/check/validators_test.cpp.o"
  "CMakeFiles/check_validators_test.dir/check/validators_test.cpp.o.d"
  "check_validators_test"
  "check_validators_test.pdb"
  "check_validators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_validators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
