# Empty dependencies file for analysis_events_test.
# This may be replaced when dependencies are built.
