file(REMOVE_RECURSE
  "CMakeFiles/analysis_events_test.dir/analysis/events_test.cpp.o"
  "CMakeFiles/analysis_events_test.dir/analysis/events_test.cpp.o.d"
  "analysis_events_test"
  "analysis_events_test.pdb"
  "analysis_events_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_events_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
