# Empty compiler generated dependencies file for fault_recovery_boundary_test.
# This may be replaced when dependencies are built.
