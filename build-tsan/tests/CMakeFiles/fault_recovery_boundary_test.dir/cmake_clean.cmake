file(REMOVE_RECURSE
  "CMakeFiles/fault_recovery_boundary_test.dir/fault/recovery_boundary_test.cpp.o"
  "CMakeFiles/fault_recovery_boundary_test.dir/fault/recovery_boundary_test.cpp.o.d"
  "fault_recovery_boundary_test"
  "fault_recovery_boundary_test.pdb"
  "fault_recovery_boundary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_recovery_boundary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
