# Empty compiler generated dependencies file for cluster_gap_test.
# This may be replaced when dependencies are built.
