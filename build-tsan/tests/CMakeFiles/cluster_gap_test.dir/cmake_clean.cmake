file(REMOVE_RECURSE
  "CMakeFiles/cluster_gap_test.dir/cluster/gap_test.cpp.o"
  "CMakeFiles/cluster_gap_test.dir/cluster/gap_test.cpp.o.d"
  "cluster_gap_test"
  "cluster_gap_test.pdb"
  "cluster_gap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_gap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
