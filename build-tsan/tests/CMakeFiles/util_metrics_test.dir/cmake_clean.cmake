file(REMOVE_RECURSE
  "CMakeFiles/util_metrics_test.dir/util/metrics_test.cpp.o"
  "CMakeFiles/util_metrics_test.dir/util/metrics_test.cpp.o.d"
  "util_metrics_test"
  "util_metrics_test.pdb"
  "util_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
