# Empty dependencies file for util_metrics_test.
# This may be replaced when dependencies are built.
